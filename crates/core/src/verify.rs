//! Heap verifier: an independent oracle used by tests and debugging.
//!
//! The verifier computes the root set from the mutator's *shadow tags* —
//! information the real collector never has — and walks the object graph,
//! checking that every pointer lands on a well-formed, live object. It is
//! deliberately redundant with the trace-table scan: the two arriving at
//! the same graph is the central correctness claim of the root-scanning
//! machinery.
//!
//! The verifier is plan-agnostic: it sees the heap only through the
//! [`Collector`](tilgc_runtime::Collector) seam (memory + shadow tags),
//! so the same walk validates every [`Plan`](crate::Plan) — semispace,
//! generational, or pretenuring — and any space layout a plan composes.

use std::collections::{HashSet, VecDeque};

use tilgc_mem::{object, Addr, Memory, ObjectKind, WORD_BYTES};
use tilgc_runtime::{CollectionInspection, MutatorState, ShadowTag, Vm};

use crate::evac::POISON;

/// Summary of a verified heap.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiveReport {
    /// Reachable objects.
    pub objects: usize,
    /// Reachable bytes (headers included).
    pub bytes: usize,
    /// Number of root locations that held (non-null) pointers.
    pub roots: usize,
}

/// Collects the shadow-tag root words: every stack slot, register and
/// alloc-buffer entry the mutator actually wrote a pointer into.
pub fn shadow_roots(m: &MutatorState) -> Vec<Addr> {
    let mut roots = Vec::new();
    for d in 0..m.stack.depth() {
        let frame = m.stack.frame(d);
        for i in 0..frame.num_slots() {
            if frame.shadow(i) == ShadowTag::Ptr {
                roots.push(Addr::new(frame.word(i) as u32));
            }
        }
    }
    for r in 0..tilgc_runtime::NUM_REGS {
        let reg = tilgc_runtime::Reg::new(r as u8);
        if m.regs.shadow(reg) == ShadowTag::Ptr {
            roots.push(Addr::new(m.regs.word(reg) as u32));
        }
    }
    for i in 0..m.alloc_buf.len() {
        if (m.alloc_buf_ptr_mask >> i) & 1 == 1 {
            roots.push(Addr::new(m.alloc_buf[i] as u32));
        }
    }
    roots
}

/// Walks the reachable graph from `roots`, validating every object.
///
/// # Panics
///
/// Panics if any reachable pointer refers to a forwarded, poisoned or
/// malformed object — i.e. on any dangling pointer a collector bug (or a
/// rooting-discipline violation in a program) would produce.
pub fn check_graph(mem: &Memory, roots: &[Addr]) -> LiveReport {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut queue: VecDeque<Addr> = VecDeque::new();
    let mut live_roots = 0;
    // Plans reserve every space with a chunk owner; when this heap did,
    // every reachable object must sit in an owned chunk. (Bare test
    // heaps with plain `reserve` skip the check.)
    let check_chunk_owners = mem.owned_chunks() > 0;
    for &r in roots {
        if !r.is_null() {
            live_roots += 1;
            if seen.insert(r.raw()) {
                queue.push_back(r);
            }
        }
    }
    let mut objects = 0;
    let mut bytes = 0;
    while let Some(addr) = queue.pop_front() {
        let raw = mem
            .try_word(addr)
            .unwrap_or_else(|| panic!("pointer {addr} outside the address space"));
        assert_ne!(raw, POISON, "pointer {addr} into poisoned (vacated) memory");
        let h = tilgc_mem::Header::from_raw(raw);
        assert!(
            h.forward_addr().is_none(),
            "live heap contains forwarding header at {addr}"
        );
        // Malformed headers mostly manifest as absurd sizes.
        let words = h.size_words();
        assert!(
            words < (1 << 28),
            "implausible object size {words} at {addr}"
        );
        objects += 1;
        bytes += h.size_bytes();
        if check_chunk_owners {
            assert!(
                mem.chunk_owner(addr).is_some(),
                "reachable object at {addr} lies in a chunk no space owns"
            );
        }
        if h.kind() != ObjectKind::RawArray {
            for i in 0..h.len() {
                if !h.field_is_pointer(i) {
                    continue;
                }
                let child = object::ptr_field(mem, addr, i);
                if !child.is_null() && seen.insert(child.raw()) {
                    queue.push_back(child);
                }
            }
        }
    }
    LiveReport {
        objects,
        bytes,
        roots: live_roots,
    }
}

/// Checks a parallel collection's per-worker copy accounting against
/// the collection's `GcStats` delta. The plans call this after every
/// collection: on the serial lane the worker vector must be empty; on a
/// parallel lane it must have exactly one slot per worker and sum to
/// the bytes the collection copied (worker 0 also absorbs serial-section
/// copies). The jsonl schema validator re-checks the same identity on
/// the emitted `collection-end` events.
///
/// # Panics
///
/// Panics if the accounting does not reconcile.
pub fn check_worker_accounting(workers: u64, worker_copied: &[u64], copied_bytes: u64) {
    if workers <= 1 {
        assert!(
            worker_copied.is_empty(),
            "serial collection carries per-worker totals: {worker_copied:?}"
        );
        return;
    }
    assert_eq!(
        worker_copied.len() as u64,
        workers,
        "per-worker totals must have one slot per worker"
    );
    assert_eq!(
        worker_copied.iter().sum::<u64>(),
        copied_bytes,
        "per-worker copied bytes do not sum to the collection's copied_bytes"
    );
}

/// Verifies a running VM's heap: shadow roots → full graph walk.
///
/// # Panics
///
/// Panics on any dangling or malformed reachable pointer.
pub fn verify_vm(vm: &Vm) -> LiveReport {
    let roots = shadow_roots(vm.mutator());
    check_graph(vm.collector().memory(), &roots)
}

/// Cross-checks a collection's [`CollectionInspection`] record against
/// the [`LiveReport`] an independent shadow-tag graph walk produced.
///
/// The invariants held against the record:
///
/// * **reuse bound (§5)** — the scan's claimed cached prefix,
///   `min(M, deepest intact marker)`, never exceeds the simulation
///   oracle's true unchanged prefix;
/// * **frame accounting** — frames scanned plus frames reused equals the
///   stack depth at the collection point;
/// * **copy/scan accounting** — every copied word was Cheney-scanned
///   (the scan cursor starts at the pre-collection frontier, so
///   `scanned_words * WORD_BYTES >= copied_bytes`);
/// * **live-size bound** — when the collector's live accounting is
///   complete, the bytes reachable from the shadow roots fit within the
///   claimed live size plus `alloc_slack_bytes` (bytes the mutator
///   allocated after the collection finished).
///
/// # Panics
///
/// Panics, naming the violated invariant, if the record is inconsistent
/// with the oracle — the failure mode an injected accounting bug
/// produces.
pub fn check_inspection(report: &LiveReport, insp: &CollectionInspection, alloc_slack_bytes: u64) {
    assert!(
        insp.claimed_prefix <= insp.oracle_prefix,
        "reuse bound violated at collection {}: claimed prefix {} exceeds oracle prefix {}",
        insp.collection,
        insp.claimed_prefix,
        insp.oracle_prefix
    );
    assert_eq!(
        insp.frames_scanned + insp.frames_reused,
        insp.depth_at_gc,
        "frame accounting broken at collection {}: {} scanned + {} reused != depth {}",
        insp.collection,
        insp.frames_scanned,
        insp.frames_reused,
        insp.depth_at_gc
    );
    assert!(
        insp.scanned_words * WORD_BYTES as u64 >= insp.copied_bytes,
        "copy/scan accounting broken at collection {}: {} words scanned < {} bytes copied",
        insp.collection,
        insp.scanned_words,
        insp.copied_bytes
    );
    if insp.live_accounting_complete {
        assert!(
            report.bytes as u64 <= insp.live_bytes_after + alloc_slack_bytes,
            "live accounting broken at collection {}: {} reachable bytes exceed {} live + {} \
             alloc slack",
            insp.collection,
            report.bytes,
            insp.live_bytes_after,
            alloc_slack_bytes
        );
    }
}

/// Verifies a running VM's heap *and* cross-checks the collector's
/// most recent [`CollectionInspection`] record via [`check_inspection`].
///
/// `alloc_slack_bytes` is the number of bytes the mutator has allocated
/// since the collection being inspected finished (those objects are
/// reachable but postdate the collector's live accounting).
///
/// # Panics
///
/// Panics on any dangling/malformed reachable pointer, or on any
/// inspection-record inconsistency.
pub fn verify_collection(vm: &Vm, alloc_slack_bytes: u64) -> LiveReport {
    let report = verify_vm(vm);
    if let Some(insp) = vm.collector().last_inspection() {
        check_inspection(&report, insp, alloc_slack_bytes);
    }
    report
}

/// A canonical, address-independent encoding of the reachable graph, for
/// before/after-collection isomorphism checks.
///
/// Objects are numbered in BFS discovery order from the roots; each object
/// contributes its kind, site, length and, per field, either the raw word
/// (non-pointers) or the discovery number of the target (pointers). Two
/// heaps with equal snapshots are isomorphic reachable graphs.
pub fn graph_snapshot(mem: &Memory, roots: &[Addr]) -> Vec<u64> {
    use std::collections::HashMap;
    let mut ids: HashMap<u32, u64> = HashMap::new();
    let mut queue: VecDeque<Addr> = VecDeque::new();
    let mut out: Vec<u64> = Vec::new();
    let mut next_id = 0u64;
    let mut id_of = |a: Addr, queue: &mut VecDeque<Addr>, ids: &mut HashMap<u32, u64>| -> u64 {
        if a.is_null() {
            return u64::MAX;
        }
        *ids.entry(a.raw()).or_insert_with(|| {
            let id = next_id;
            next_id += 1;
            queue.push_back(a);
            id
        })
    };
    for &r in roots {
        let id = id_of(r, &mut queue, &mut ids);
        out.push(id);
    }
    out.push(u64::MAX - 1); // separator
    while let Some(addr) = queue.pop_front() {
        let h = object::header(mem, addr);
        out.push(match h.kind() {
            ObjectKind::Record => 0,
            ObjectKind::PtrArray => 1,
            ObjectKind::RawArray => 2,
        });
        out.push(u64::from(mem.site_of(addr).get()));
        out.push(h.len() as u64);
        match h.kind() {
            ObjectKind::RawArray => {
                for i in 0..h.payload_words() {
                    out.push(object::field(mem, addr, i));
                }
            }
            _ => {
                for i in 0..h.len() {
                    if h.field_is_pointer(i) {
                        let child = object::ptr_field(mem, addr, i);
                        out.push(id_of(child, &mut queue, &mut ids));
                    } else {
                        out.push(object::field(mem, addr, i));
                    }
                }
            }
        }
    }
    out
}

/// Snapshot of a running VM's reachable graph (shadow roots).
pub fn vm_snapshot(vm: &Vm) -> Vec<u64> {
    let roots = shadow_roots(vm.mutator());
    graph_snapshot(vm.collector().memory(), &roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_mem::{SiteId, Space};

    fn heap() -> (Memory, Space) {
        let mut mem = Memory::with_capacity_words(512);
        let s = Space::new(mem.reserve(256).unwrap());
        (mem, s)
    }

    #[test]
    fn check_graph_counts_reachable_only() {
        let (mut mem, mut s) = heap();
        let a = object::alloc_record(&mut mem, &mut s, SiteId::new(1), &[1], 0).unwrap();
        let b = object::alloc_record(&mut mem, &mut s, SiteId::new(2), &[u64::from(a.raw())], 0b1)
            .unwrap();
        let _garbage = object::alloc_record(&mut mem, &mut s, SiteId::new(3), &[9], 0).unwrap();
        let report = check_graph(&mem, &[b]);
        assert_eq!(report.objects, 2);
        assert_eq!(report.bytes, 2 * 16);
        assert_eq!(report.roots, 1);
    }

    #[test]
    fn shared_structure_counted_once() {
        let (mut mem, mut s) = heap();
        let shared = object::alloc_record(&mut mem, &mut s, SiteId::new(1), &[5], 0).unwrap();
        let l = object::alloc_record(&mut mem, &mut s, SiteId::new(2), &[shared.raw().into()], 1)
            .unwrap();
        let r = object::alloc_record(&mut mem, &mut s, SiteId::new(3), &[shared.raw().into()], 1)
            .unwrap();
        let report = check_graph(&mem, &[l, r]);
        assert_eq!(report.objects, 3);
    }

    #[test]
    fn cycles_terminate() {
        let (mut mem, mut s) = heap();
        let a = object::alloc_record(&mut mem, &mut s, SiteId::new(1), &[0], 0b1).unwrap();
        let b =
            object::alloc_record(&mut mem, &mut s, SiteId::new(1), &[a.raw().into()], 0b1).unwrap();
        object::set_field(&mut mem, a, 0, u64::from(b.raw()));
        let report = check_graph(&mem, &[a]);
        assert_eq!(report.objects, 2);
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn dangling_pointer_into_poison_is_caught() {
        let (mut mem, mut s) = heap();
        let a = object::alloc_record(&mut mem, &mut s, SiteId::new(1), &[1], 0).unwrap();
        mem.fill(a, 2, POISON);
        check_graph(&mem, &[a]);
    }

    #[test]
    #[should_panic(expected = "forwarding header")]
    fn forwarded_object_in_live_graph_is_caught() {
        let (mut mem, mut s) = heap();
        let a = object::alloc_record(&mut mem, &mut s, SiteId::new(1), &[1], 0).unwrap();
        object::set_header(&mut mem, a, tilgc_mem::Header::forward(Addr::new(4)));
        check_graph(&mem, &[a]);
    }

    #[test]
    fn snapshots_are_address_independent() {
        // Two copies of the same structure at different addresses must
        // produce identical snapshots.
        let (mut mem, mut s) = heap();
        let build = |mem: &mut Memory, s: &mut Space| {
            let inner = object::alloc_record(mem, s, SiteId::new(1), &[7, 8], 0).unwrap();
            object::alloc_record(mem, s, SiteId::new(2), &[inner.raw().into(), 3], 0b1).unwrap()
        };
        let r1 = build(&mut mem, &mut s);
        let r2 = build(&mut mem, &mut s);
        assert_ne!(r1, r2);
        assert_eq!(graph_snapshot(&mem, &[r1]), graph_snapshot(&mem, &[r2]));
    }

    #[test]
    fn snapshots_distinguish_different_graphs() {
        let (mut mem, mut s) = heap();
        let a = object::alloc_record(&mut mem, &mut s, SiteId::new(1), &[7], 0).unwrap();
        let b = object::alloc_record(&mut mem, &mut s, SiteId::new(1), &[8], 0).unwrap();
        assert_ne!(graph_snapshot(&mem, &[a]), graph_snapshot(&mem, &[b]));
    }
}
