//! The large-object space.
//!
//! §2.1: "Large arrays are not allocated in the nursery and promoted to
//! the tenured area; instead, they reside in a region managed by a
//! mark-sweep algorithm." Copying a multi-kilobyte array at every
//! promotion would swamp the collector; here such arrays are allocated in
//! place and only their *liveness* is tracked.
//!
//! Blocks are handed out first-fit from a free list with coalescing of
//! adjacent frees; large objects are few, so the lists stay short.
//!
//! Mark state lives in the heap's side mark bitmap
//! ([`Memory::mark_test_and_set`]), not in per-object bookkeeping:
//! [`begin_marking`](LargeObjectSpace::begin_marking) is one bulk clear
//! over the space's reservation, and parallel tracing workers mark
//! through the atomic [`SideMetaView`](tilgc_mem::SideMetaView) without
//! taking a lock.
//!
//! In the space/plan layering this is the
//! [`CopySemantics::MarkSweep`](crate::CopySemantics::MarkSweep) policy:
//! the generational plans route oversized allocations here, and the
//! tracing driver marks reached large objects and queues them on its
//! [`ObjectQueue`](crate::ObjectQueue) to be scanned without moving.

use std::collections::BTreeMap;

use tilgc_mem::{Addr, Memory, SpaceRange};

/// Per-object bookkeeping (the mark bit lives in the side bitmap).
#[derive(Clone, Copy, Debug)]
struct LargeObj {
    words: usize,
}

/// The mark-sweep large-object space.
#[derive(Clone, Debug)]
pub struct LargeObjectSpace {
    range: SpaceRange,
    /// Bump frontier for never-used tail of the range.
    frontier: Addr,
    objects: BTreeMap<u32, LargeObj>,
    /// Free blocks by address (coalesced on insert).
    free: BTreeMap<u32, usize>,
    used_words: usize,
    /// Large pointer arrays allocated since the last collection: they may
    /// have been initialized with nursery references, so the next minor
    /// collection scans them in place.
    pub pending_scan: Vec<Addr>,
}

impl LargeObjectSpace {
    /// Creates a large-object space over `range`.
    pub fn new(range: SpaceRange) -> LargeObjectSpace {
        LargeObjectSpace {
            range,
            frontier: range.start,
            objects: BTreeMap::new(),
            free: BTreeMap::new(),
            used_words: 0,
            pending_scan: Vec::new(),
        }
    }

    /// Words of address space the LOS spans.
    pub fn capacity_words(&self) -> usize {
        self.range.words()
    }

    /// Words currently occupied by live (not yet swept) objects.
    pub fn used_words(&self) -> usize {
        self.used_words
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Whether `addr` is the address of a live large object.
    pub fn contains(&self, addr: Addr) -> bool {
        self.objects.contains_key(&addr.raw())
    }

    /// Whether `addr` falls anywhere in the space's reservation.
    pub fn in_range(&self, addr: Addr) -> bool {
        self.range.contains(addr)
    }

    /// Allocates a block of `words` words, first-fit.
    ///
    /// Returns `None` if no block fits (the caller should trigger a major
    /// collection and retry).
    pub fn alloc(&mut self, words: usize) -> Option<Addr> {
        // First fit from the free list.
        let found = self
            .free
            .iter()
            .find(|&(_, &len)| len >= words)
            .map(|(&a, &len)| (a, len));
        let addr = if let Some((a, len)) = found {
            self.free.remove(&a);
            if len > words {
                self.free.insert(a + words as u32, len - words);
            }
            Addr::new(a)
        } else {
            if self.frontier + words > self.range.end {
                return None;
            }
            let a = self.frontier;
            self.frontier += words;
            a
        };
        self.objects.insert(addr.raw(), LargeObj { words });
        self.used_words += words;
        Some(addr)
    }

    /// Clears all mark bits (start of a major collection): one bulk
    /// sweep over the side bitmap words covering the reservation.
    pub fn begin_marking(&self, mem: &mut Memory) {
        mem.bulk_clear_marks(self.range);
    }

    /// Marks the object at `addr` as reachable via the side mark bitmap.
    /// Returns `true` the first time (the caller must then scan the
    /// object's fields).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live large object.
    pub fn mark(&self, mem: &mut Memory, addr: Addr) -> bool {
        assert!(self.contains(addr), "mark of unknown large object");
        mem.mark_test_and_set(addr)
    }

    /// Sweeps unmarked objects (their side mark bit is still clear),
    /// returning their addresses (for death profiling) and freeing their
    /// blocks.
    pub fn sweep(&mut self, mem: &Memory) -> Vec<Addr> {
        let dead: Vec<(u32, usize)> = self
            .objects
            .iter()
            .filter(|&(&a, _)| !mem.is_marked(Addr::new(a)))
            .map(|(&a, o)| (a, o.words))
            .collect();
        let mut swept = Vec::with_capacity(dead.len());
        for (a, words) in dead {
            self.objects.remove(&a);
            self.used_words -= words;
            self.insert_free(a, words);
            swept.push(Addr::new(a));
        }
        swept
    }

    fn insert_free(&mut self, addr: u32, mut words: usize) {
        let mut addr = addr;
        // Coalesce with the block after.
        if let Some(&next_len) = self.free.get(&(addr + words as u32)) {
            self.free.remove(&(addr + words as u32));
            words += next_len;
        }
        // Coalesce with the block before.
        if let Some((&prev, &prev_len)) = self.free.range(..addr).next_back() {
            if prev + prev_len as u32 == addr {
                self.free.remove(&prev);
                addr = prev;
                words += prev_len;
            }
        }
        // A block ending at the bump frontier rejoins the untouched tail,
        // so large future allocations see one contiguous region.
        if Addr::new(addr) + words == self.frontier {
            self.frontier = Addr::new(addr);
        } else {
            self.free.insert(addr, words);
        }
    }

    /// Iterates over live object addresses.
    pub fn iter(&self) -> impl Iterator<Item = Addr> + '_ {
        self.objects.keys().map(|&a| Addr::new(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_mem::Memory;

    fn los(words: usize) -> (Memory, LargeObjectSpace) {
        let mut mem = Memory::with_capacity_words(words + 1);
        let l = LargeObjectSpace::new(mem.reserve(words).unwrap());
        (mem, l)
    }

    #[test]
    fn alloc_and_contains() {
        let (_mem, mut l) = los(1000);
        let a = l.alloc(100).unwrap();
        let b = l.alloc(200).unwrap();
        assert_ne!(a, b);
        assert!(l.contains(a) && l.contains(b));
        assert!(!l.contains(a + 1), "only object starts count");
        assert_eq!(l.used_words(), 300);
    }

    #[test]
    fn alloc_failure_when_full() {
        let (_mem, mut l) = los(100);
        assert!(l.alloc(60).is_some());
        assert!(l.alloc(60).is_none());
    }

    #[test]
    fn sweep_frees_unmarked_and_blocks_are_reusable() {
        let (mut mem, mut l) = los(300);
        let a = l.alloc(100).unwrap();
        let b = l.alloc(100).unwrap();
        let c = l.alloc(100).unwrap();
        l.begin_marking(&mut mem);
        assert!(l.mark(&mut mem, b));
        assert!(!l.mark(&mut mem, b), "second mark reports already-marked");
        let dead = l.sweep(&mem);
        assert_eq!(dead.len(), 2);
        assert!(dead.contains(&a) && dead.contains(&c));
        assert_eq!(l.used_words(), 100);
        // a's and c's blocks are free again (c coalesced with the tail
        // logic is not required; a new 100-word alloc must succeed).
        let d = l.alloc(100).unwrap();
        assert!(l.contains(d));
    }

    #[test]
    fn free_blocks_coalesce() {
        let (mut mem, mut l) = los(300);
        let a = l.alloc(100).unwrap();
        let _b = l.alloc(100).unwrap();
        let c = l.alloc(100).unwrap();
        l.begin_marking(&mut mem);
        // Everything dies.
        let _ = c;
        let dead = l.sweep(&mem);
        assert_eq!(dead.len(), 3);
        // The three adjacent blocks coalesced: one 300-word alloc fits.
        let big = l.alloc(300).unwrap();
        assert_eq!(big, a);
    }

    #[test]
    fn survivors_keep_their_address() {
        let (mut mem, mut l) = los(300);
        let a = l.alloc(128).unwrap();
        l.begin_marking(&mut mem);
        l.mark(&mut mem, a);
        l.sweep(&mem);
        assert!(l.contains(a));
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn begin_marking_resets_stale_marks() {
        let (mut mem, mut l) = los(300);
        let a = l.alloc(64).unwrap();
        l.begin_marking(&mut mem);
        assert!(l.mark(&mut mem, a));
        // A new marking round forgets the previous cycle's bits.
        l.begin_marking(&mut mem);
        assert!(!mem.is_marked(a));
        assert!(l.mark(&mut mem, a), "re-mark wins after the bulk clear");
    }

    #[test]
    #[should_panic(expected = "unknown large object")]
    fn marking_unknown_address_panics() {
        let (mut mem, l) = los(100);
        l.mark(&mut mem, Addr::new(5));
    }
}
