//! The generational plan (§2.1), optionally extended with generational
//! stack collection (§5) and profile-driven pretenuring (§6).
//!
//! Two generations, each a [`CopySpace`]: a nursery bounded by the
//! secondary cache size ([`CopySemantics::Promote`] — minor collections
//! promote **all** nursery survivors immediately, "at each minor
//! collection, we immediately promote all live objects from the
//! nursery") and a tenured generation evacuated between its semispace
//! halves at major collections. Large arrays bypass the nursery into the
//! mark-sweep [`LargeObjectSpace`]. Intergenerational stores are caught
//! by the mutator's write barrier and filtered here at each collection.
//!
//! With a [`MarkerPolicy`] enabled, stack scans reuse cached decodes for
//! the unchanged stack prefix; because survivors are promoted immediately,
//! *cached frames contribute no roots at all to a minor collection* —
//! everything they reference is already tenured. This is the mechanism
//! behind the paper's 67–74 % GC-time reductions on deep-stack programs.
//!
//! With a [`PretenuredRegion`] composed in (see
//! [`PretenuringPlan`](crate::PretenuringPlan)), allocations from
//! designated sites go straight into the tenured generation; the freshly
//! pretenured objects are *scanned in place* at the next collection
//! ("this is a win over copying since copying objects is slower than
//! only scanning them"), unless the §7.2 analysis marked their site
//! no-scan.

use std::time::Instant;

use tilgc_mem::{Addr, BudgetSnapshot, GcError, Memory, Space, SpaceRange};
use tilgc_obs::{
    CollectionBegin, DegradationBegin, DegradationEnd, Event, GcPhase, HeapCensus, PhaseTimer,
    SiteDemote, SitePromote, SiteWindow, SpaceCensus, TelemetryAcc,
};
use tilgc_runtime::{
    AllocShape, BarrierEntry, CollectReason, CollectionInspection, GcStats, HeapProfile,
    MutatorState,
};

use crate::adaptive::AdaptivePretenure;
use crate::config::{GcConfig, MarkerPolicy, PretenurePolicy};
use crate::evac::{poison_range, sweep_profile_deaths, Evacuator, FaultOutcome};
use crate::governor::{PressureRung, PressureSession};
use crate::plan::Plan;
use crate::roots::{append_cached_roots, scan_stack, ScanCache};
use crate::scheduler::WorkerFaultSpec;
use crate::space::{CopySemantics, CopySpace, PretenuredRegion};
use crate::util::{
    alloc_in_space, build_collection_end, build_inspection, materialize, reason_str,
};
use crate::LargeObjectSpace;

/// The two-generation plan of §2.1.
pub struct GenerationalPlan {
    mem: Memory,
    /// The nursery system: with a zero tenure threshold only the active
    /// half is ever used (the paper's immediate-promotion setup); with a
    /// §7.2 threshold the pair works as aging semispaces.
    nursery: CopySpace,
    tenured: CopySpace,
    los: Option<LargeObjectSpace>,
    budget_words: usize,
    nursery_words: usize,
    large_object_words: usize,
    tenured_target_liveness: f64,
    /// Tenured occupancy (words) beyond which the next collection goes
    /// major — live-size/0.3 after the last major, per §2.1.
    major_threshold_words: usize,
    /// §7.2 tenure threshold (0 = immediate promotion).
    tenure_threshold: u8,
    marker_policy: MarkerPolicy,
    cache: Option<ScanCache>,
    pretenured: Option<PretenuredRegion>,
    /// Online adaptive pretenuring (the closed telemetry→policy loop):
    /// promotes and demotes sites mid-run from observed survival. When
    /// set, the telemetry accumulator runs even without a recorder —
    /// the estimator is its only consumer then.
    adaptive: Option<AdaptivePretenure>,
    /// Oversized objects tenured at birth with no pretenure/LOS pending
    /// list to ride on; scanned in place at the next minor collection.
    oversized_pending: Vec<Addr>,
    /// §7.2 remembered set: old-generation objects / field locations
    /// currently referencing survivor-space objects (only populated when
    /// `tenure_threshold > 0`).
    young_refs: Vec<Addr>,
    young_locs: Vec<Addr>,
    /// §9 adaptive strategy: switch to semispace-style operation while
    /// tenured data keeps dying.
    adaptive_major: bool,
    /// While set, the plan operates as a semispace collector: allocation
    /// goes straight into the (large) tenured space and every collection
    /// is a full collection — the regime §9 identifies as the one where
    /// "a semispace collector can outperform a generational collector".
    semispace_mode: bool,
    /// Reclaim ratio of the most recent major collection (1.0 = all
    /// tenured data died).
    last_major_reclaim: f64,
    /// Sliding window: majors among the last 16 collections (low 16 bits,
    /// one bit per collection).
    recent_major_bits: u32,
    /// Collections spent in semispace mode since entering; the mode is
    /// re-evaluated ("probation") every 32.
    mode_age: u32,
    /// Whether the governor's one-shot budget rebalance (ladder rung 3)
    /// has already been spent for this plan's lifetime.
    rebalanced: bool,
    profile: Option<HeapProfile>,
    stats: GcStats,
    inspection: Option<CollectionInspection>,
    /// Telemetry accumulator, allocated lazily the first time a
    /// collection or allocation runs with an enabled recorder installed.
    telem: Option<TelemetryAcc>,
    workers: usize,
    packet_reorder: bool,
    /// Injected worker fault, armed until its one shot fires (the spec
    /// is per-run, not per-collection).
    worker_fault: Option<WorkerFaultSpec>,
    fault_fired: bool,
    watchdog_ms: Option<u64>,
    worker_cycle_budget: Option<u64>,
    track_ttsp: bool,
}

impl GenerationalPlan {
    /// Creates a generational plan within `config.heap_budget_bytes`.
    ///
    /// The nursery gets `config.nursery_bytes` (capped at a quarter of the
    /// budget); the rest is split between the two tenured semispaces and,
    /// if enabled, the large-object space.
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small for the requested nursery.
    pub fn new(config: &GcConfig) -> GenerationalPlan {
        let budget_words = config.heap_budget_words();
        let nursery_words = config.nursery_words().min(budget_words / 4).max(64);
        let tenured_phys = budget_words; // physical reservation; logical limits enforce budget
        let los_phys = budget_words;
        let capacity = 2 * nursery_words + 2 * tenured_phys + los_phys + 32;
        let mut mem = Memory::with_capacity_words(capacity);
        let n0 = Space::new(
            mem.reserve_owned(nursery_words, "nursery")
                .expect("nursery reservation"),
        );
        let n1 = Space::new(
            mem.reserve_owned(nursery_words, "nursery")
                .expect("nursery reservation"),
        );
        let t0 = Space::new(
            mem.reserve_owned(tenured_phys, "tenured")
                .expect("tenured reservation"),
        );
        let t1 = Space::new(
            mem.reserve_owned(tenured_phys, "tenured")
                .expect("tenured reservation"),
        );
        let los = (config.large_object_bytes > 0).then(|| {
            LargeObjectSpace::new(
                mem.reserve_owned(los_phys, "los")
                    .expect("large-object reservation"),
            )
        });
        let mut c = GenerationalPlan {
            mem,
            nursery: CopySpace::new("nursery", CopySemantics::Promote, n0, n1),
            tenured: CopySpace::new("tenured", CopySemantics::Evacuate, t0, t1),
            los,
            budget_words,
            nursery_words,
            large_object_words: config.large_object_bytes / tilgc_mem::WORD_BYTES,
            tenured_target_liveness: config.tenured_target_liveness,
            major_threshold_words: 0,
            tenure_threshold: config.tenure_threshold,
            marker_policy: config.marker_policy,
            cache: config.marker_policy.is_enabled().then(ScanCache::default),
            // The adaptive loop needs a region to route promoted sites
            // into even when no static (profile-derived) policy seeds it.
            pretenured: config
                .pretenure
                .clone()
                .or_else(|| config.adaptive.map(|_| PretenurePolicy::new()))
                .map(PretenuredRegion::new),
            adaptive: config
                .adaptive
                .map(|a| AdaptivePretenure::new(a, config.pretenure.as_ref())),
            oversized_pending: Vec::new(),
            young_refs: Vec::new(),
            young_locs: Vec::new(),
            adaptive_major: config.adaptive_major,
            semispace_mode: false,
            last_major_reclaim: 0.0,
            recent_major_bits: 0,
            mode_age: 0,
            rebalanced: false,
            profile: config.profiling.then(HeapProfile::new),
            stats: GcStats::default(),
            inspection: None,
            telem: None,
            workers: config.workers,
            packet_reorder: config.packet_reorder,
            worker_fault: config.worker_fault,
            fault_fired: false,
            watchdog_ms: config.watchdog_ms,
            worker_cycle_budget: config.worker_cycle_budget,
            track_ttsp: config.track_ttsp,
        };
        c.apply_limits(0);
        c
    }

    /// The pretenured-region site policy in force, if any.
    pub fn pretenure_policy(&self) -> Option<&PretenurePolicy> {
        self.pretenured.as_ref().map(|r| r.policy())
    }

    /// The tenured budget per semispace, given current LOS usage.
    fn tenured_max_words(&self) -> usize {
        let los_used = self.los.as_ref().map_or(0, |l| l.used_words());
        self.budget_words
            .saturating_sub(self.nursery_words)
            .saturating_sub(los_used)
            / 2
    }

    fn apply_limits(&mut self, live_words: usize) {
        let max = self.tenured_max_words();
        self.tenured.set_limit_words(max);
        let target = (live_words as f64 / self.tenured_target_liveness) as usize;
        self.major_threshold_words = target.clamp((2 * self.nursery_words).min(max), max);
    }

    /// Whether the next collection should be major: the tenured area is
    /// past its liveness-target threshold, or could not absorb a full
    /// nursery of promotions.
    fn needs_major(&self) -> bool {
        let t = self.tenured.active();
        let n = self.nursery.active();
        t.used_words() + n.used_words() > self.major_threshold_words
            || t.free_words() < n.used_words()
    }

    /// The range all live tenured data occupies right now.
    fn tenured_live_range(&self) -> SpaceRange {
        let t = self.tenured.active();
        SpaceRange {
            start: t.start(),
            end: t.frontier(),
        }
    }

    /// Starts a collection's telemetry, if a recorder is installed:
    /// emits the begin event and returns the phase timer. Returns `None`
    /// (and does nothing at all) under the default disabled recorder.
    fn begin_telemetry(
        &mut self,
        m: &mut MutatorState,
        reason: &'static str,
        major: bool,
        depth_at_gc: usize,
    ) -> Option<PhaseTimer> {
        if !m.recorder.is_enabled() {
            return None;
        }
        self.telem
            .get_or_insert_with(TelemetryAcc::default)
            .note_depth(depth_at_gc as u64);
        // TTSP is read before any GC work so the distance reflects the
        // mutator's position when the collection took over.
        let ttsp_cycles = if self.track_ttsp {
            m.cycles_since_safepoint()
        } else {
            0
        };
        m.recorder.record(Event::CollectionBegin(CollectionBegin {
            collection: self.stats.collections + 1,
            plan: "generational",
            reason,
            major,
            depth: depth_at_gc as u64,
            start_cycles: m.stats.client_cycles + self.stats.gc_cycles(),
            ttsp_cycles,
        }));
        Some(PhaseTimer::start(self.stats.gc_cycles()))
    }

    /// Finishes a collection's telemetry: phase spans, the end event,
    /// and the per-site samples accumulated since the last collection.
    #[allow(clippy::too_many_arguments)]
    fn end_telemetry(
        &mut self,
        m: &mut MutatorState,
        timer: Option<PhaseTimer>,
        stats_before: &GcStats,
        wall_ns: u64,
        workers: u64,
        worker_copied: Vec<u64>,
        side_cleared_words: u64,
        fault: FaultOutcome,
    ) {
        let Some(timer) = timer else { return };
        let collection = self.stats.collections;
        for e in timer.into_events(collection) {
            m.recorder.record(e);
        }
        let telem = self.telem.as_mut().expect("allocated by begin_telemetry");
        let insp = self.inspection.as_ref().expect("built by the collection");
        let end_cycles = m.stats.client_cycles + self.stats.gc_cycles();
        m.recorder
            .record(Event::CollectionEnd(Box::new(build_collection_end(
                stats_before,
                &self.stats,
                insp,
                telem,
                end_cycles,
                wall_ns,
                workers,
                worker_copied,
                self.mem.owned_chunks() as u64,
                side_cleared_words,
            ))));
        // A degradation episode brackets right behind the end event,
        // like a census: the affected collection has already closed
        // with the exact serial answer.
        if fault.degraded {
            m.recorder.record(Event::DegradationBegin(DegradationBegin {
                collection,
                trigger: fault.trigger.unwrap_or("orphan"),
                workers,
                workers_lost: fault.workers_lost,
            }));
            m.recorder.record(Event::DegradationEnd(DegradationEnd {
                collection,
                leftover_packets: fault.leftover_packets,
                outcome: "drained",
            }));
        }
        // The heap census rides right behind the end event: per-space
        // occupancy plus the route table's current size, all host-side
        // reads — no simulated cycles, no GcStats.
        let mut spaces = vec![
            SpaceCensus {
                space: "nursery",
                used_words: self.nursery.active().used_words() as u64,
                reserved_words: self.nursery.active().capacity_words() as u64,
                chunks: self.mem.owned_chunks_by("nursery") as u64,
            },
            SpaceCensus {
                space: "tenured",
                used_words: self.tenured.active().used_words() as u64,
                reserved_words: self.tenured.active().capacity_words() as u64,
                chunks: self.mem.owned_chunks_by("tenured") as u64,
            },
        ];
        if let Some(los) = &self.los {
            spaces.push(SpaceCensus {
                space: "los",
                used_words: los.used_words() as u64,
                reserved_words: los.capacity_words() as u64,
                chunks: self.mem.owned_chunks_by("los") as u64,
            });
        }
        m.recorder.record(Event::HeapCensus(HeapCensus {
            collection,
            pretenured_sites: self
                .pretenured
                .as_ref()
                .map_or(0, |r| r.routed_sites() as u64),
            spaces,
        }));
        for e in telem.drain_samples(collection) {
            m.recorder.record(e);
        }
    }

    /// The closed loop's decision step, run at the end of every
    /// collection while adaptation is on: feed the per-site windows into
    /// the estimator and apply the placement flips it returns. Must run
    /// *before* [`end_telemetry`](Self::end_telemetry) — draining the
    /// samples resets the windows the estimator reads.
    fn adapt(&mut self, m: &mut MutatorState, major: bool) {
        let Some(adaptive) = self.adaptive.as_mut() else {
            return;
        };
        let Some(telem) = self.telem.as_mut() else {
            return;
        };
        let windows: Vec<SiteWindow> = telem.windows().collect();
        let collection = self.stats.collections;
        let out = adaptive.observe(collection, major, &windows);
        if !m.recorder.is_enabled() {
            // No recorder to drain the windows at collection end: reset
            // them here so each observation stays one collection wide.
            telem.clear_windows();
        }
        if out.is_empty() {
            return;
        }
        let region = self
            .pretenured
            .as_mut()
            .expect("adaptive plans always compose a pretenured region");
        for &(site, permille) in &out.promotions {
            region.promote_site(site);
            self.stats.sites_promoted += 1;
            if m.recorder.is_enabled() {
                m.recorder.record(Event::SitePromote(SitePromote {
                    collection,
                    site: site.get(),
                    survival_permille: permille,
                }));
            }
        }
        for &(site, permille) in &out.demotions {
            region.demote_site(site);
            self.stats.sites_demoted += 1;
            if m.recorder.is_enabled() {
                m.recorder.record(Event::SiteDemote(SiteDemote {
                    collection,
                    site: site.get(),
                    survival_permille: permille,
                    reason: "adaptive",
                }));
            }
        }
    }

    fn minor(&mut self, m: &mut MutatorState, reason: &'static str) {
        let wall_start = Instant::now();
        let stats_before = self.stats;
        let side_cleared_before = self.mem.side_cleared_words();
        let depth_at_gc = m.stack.depth();
        let mut timer = self.begin_telemetry(m, reason, false, depth_at_gc);
        let mut los_pending = self.take_los_pending();
        los_pending.append(&mut self.oversized_pending);
        self.stats.collections += 1;
        self.stats.depth_at_gc_sum += depth_at_gc as u64;
        self.stats.other_cycles += m.cost.gc_base;
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::Setup, self.stats.gc_cycles());
        }

        // --- root processing (GC-stack) ---
        let stack_t0 = Instant::now();
        let outcome = scan_stack(m, self.cache.as_mut(), self.marker_policy, &mut self.stats);
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::StackDecode, self.stats.gc_cycles());
        }
        let scan_claim = (outcome.claimed_prefix, outcome.oracle_prefix);
        // Immediate promotion means frames scanned at an earlier
        // collection cannot reference the (newer) nursery: only newly
        // scanned frames, registers and the alloc buffer yield roots.
        // With a §7.2 tenure threshold, copied-back survivors are young
        // and movable, so cached frames' roots must be processed too
        // (their decode cost is still saved).
        let mut roots = outcome.new_roots;
        if self.tenure_threshold > 0 {
            append_cached_roots(self.cache.as_ref(), outcome.reused_frames, &mut roots);
        }

        let nursery_range = self.nursery.active().range();
        let nursery_frontier = self.nursery.active().frontier();
        let from_used = nursery_frontier - nursery_range.start;
        let from_ranges = [nursery_range];
        // Parallel lane needs headroom for abandoned chunk tails, and the
        // copy-back survivor path (§7.2 threshold) splits copies between
        // two spaces — both fall back to the serial oracle.
        let parallel = self.workers > 1
            && self.profile.is_none()
            && self.tenure_threshold == 0
            && self.tenured.active().free_words()
                >= from_used + crate::scheduler::slack_budget_words(self.workers);
        let survivor_space = self.nursery.inactive_mut();
        let mut evac = Evacuator::new(
            &mut self.mem,
            &from_ranges,
            self.tenured.active_mut(),
            Some(nursery_range),
            None, // the LOS is old-generation: untouched by minor collections
            self.profile.as_mut(),
            &mut self.stats,
            m.cost,
        );
        if self.tenure_threshold > 0 {
            evac.set_survivor(survivor_space, self.tenure_threshold);
        }
        if timer.is_some() || self.adaptive.is_some() {
            evac.set_telemetry(self.telem.get_or_insert_with(TelemetryAcc::default));
        }
        if parallel {
            evac.set_workers(self.workers, self.packet_reorder);
            if !self.fault_fired {
                evac.set_worker_fault(self.worker_fault);
            }
            evac.set_watchdog_ms(self.watchdog_ms);
            evac.set_cycle_budget(self.worker_cycle_budget);
        }
        evac.forward_roots(m, &roots);
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::RootScan, evac.current_gc_cycles());
        }
        let stack_ns = stack_t0.elapsed().as_nanos() as u64;

        // --- copying (GC-copy) ---
        let copy_t0 = Instant::now();
        // Write barrier: old→young references created by pointer updates.
        // Field entries (the sequential store buffer) are batched —
        // sorted and deduplicated before filtering, since a hot field
        // reached the buffer once per store. The simulated cost stays per
        // *recorded* entry: the collector still examines every entry, the
        // batching only removes redundant host-side forwarding work.
        // Object entries (object marking) are already distinct by
        // construction (the dirty bit) and are processed in record order.
        let mut barrier_entries = 0u64;
        let mut field_locs: Vec<Addr> = Vec::new();
        let mut barrier = std::mem::replace(&mut m.barrier, tilgc_runtime::WriteBarrier::None);
        barrier.drain(|entry| {
            barrier_entries += 1;
            match entry {
                BarrierEntry::Field(loc) => field_locs.push(loc),
                BarrierEntry::Object(obj) => {
                    // The object may itself be in the nursery (young-on-young
                    // update): its copy, if live, is scanned by Cheney anyway,
                    // and scanning it here in place is harmless. Clear the
                    // dirty bit either way.
                    evac.clear_dirty_and_scan(obj);
                }
            }
        });
        m.barrier = barrier;
        evac.forward_field_locs(&mut field_locs);
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::BarrierFilter, evac.current_gc_cycles());
        }
        // Freshly pretenured regions: scan in place instead of copying.
        let pending = self.pretenured.as_mut().map(|p| p.take_pending());
        let grouped = self.pretenured.as_ref().is_some_and(|p| p.grouped());
        if let Some(pending) = pending {
            for addr in pending {
                evac.scan_in_place(addr, grouped);
            }
        }
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::PretenuredInPlaceScan, evac.current_gc_cycles());
        }
        // Young large pointer arrays may hold nursery references from
        // their initializing stores.
        for addr in los_pending {
            evac.scan_in_place(addr, false);
        }
        // §7.2 remembered set: old objects still referencing survivors
        // from the previous collection.
        for addr in std::mem::take(&mut self.young_refs) {
            evac.scan_in_place(addr, false);
        }
        for loc in std::mem::take(&mut self.young_locs) {
            evac.forward_word_at(loc);
        }
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::BarrierFilter, evac.current_gc_cycles());
        }
        evac.drain();
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::CheneyCopy, evac.current_gc_cycles());
        }
        self.young_refs = evac.take_young_owner_refs();
        self.young_locs = evac.take_young_field_locs();
        let workers_used = if evac.parallel() {
            self.workers as u64
        } else {
            1
        };
        let worker_copied = evac.worker_copied().to_vec();
        let fault = evac.fault_outcome();
        let copy_ns = copy_t0.elapsed().as_nanos() as u64;

        self.stats.barrier_entries += barrier_entries;
        self.stats.other_cycles += m.cost.barrier_entry * barrier_entries;
        if let Some(t) = timer.as_mut() {
            // The per-entry examination charge lands after the drain;
            // fold it into the barrier-filter phase.
            t.mark(GcPhase::BarrierFilter, self.stats.gc_cycles());
        }

        sweep_profile_deaths(
            &self.mem,
            self.profile.as_mut(),
            nursery_range.start,
            nursery_frontier,
        );
        poison_range(&mut self.mem, nursery_range, nursery_frontier);
        // Vacating the nursery invalidates every side dirty bit in it in
        // one word sweep — fresh allocations at reused addresses must
        // start clean or the object-marking barrier would skip them.
        self.mem.bulk_clear_dirty(nursery_range);
        self.nursery.active_mut().reset();
        if self.tenure_threshold > 0 {
            // Flip: allocation continues in the space now holding the
            // copied-back survivors.
            self.nursery.flip();
        }

        let live_words =
            self.tenured.active().used_words() + self.los.as_ref().map_or(0, |l| l.used_words());
        if fault.fired {
            self.fault_fired = true;
        }
        self.stats.workers_lost += fault.workers_lost;
        self.stats.degraded_collections += u64::from(fault.degraded);
        self.stats
            .note_live_bytes(tilgc_mem::words_to_bytes(live_words) as u64);
        self.stats.stack_wall_ns += stack_ns;
        self.stats.copy_wall_ns += copy_ns;
        let total_ns = wall_start.elapsed().as_nanos() as u64;
        self.stats.total_wall_ns += total_ns;
        crate::verify::check_worker_accounting(
            workers_used,
            &worker_copied,
            self.stats.copied_bytes - stats_before.copied_bytes,
        );
        // With a §7.2 tenure threshold, copied-back survivors live in the
        // nursery system but are not counted in `live_words`: the record
        // marks the byte accounting incomplete so verifiers skip it.
        self.inspection = Some(build_inspection(
            &stats_before,
            &self.stats,
            false,
            depth_at_gc,
            self.tenure_threshold == 0,
            scan_claim,
        ));
        self.adapt(m, false);
        let side_cleared = self.mem.side_cleared_words() - side_cleared_before;
        self.end_telemetry(
            m,
            timer,
            &stats_before,
            total_ns,
            workers_used,
            worker_copied,
            side_cleared,
            fault,
        );
    }

    fn major(&mut self, m: &mut MutatorState, reason: &'static str) {
        let wall_start = Instant::now();
        let stats_before = self.stats;
        let side_cleared_before = self.mem.side_cleared_words();
        let depth_at_gc = m.stack.depth();
        let mut timer = self.begin_telemetry(m, reason, true, depth_at_gc);
        self.stats.collections += 1;
        self.stats.major_collections += 1;
        self.stats.depth_at_gc_sum += depth_at_gc as u64;
        self.stats.other_cycles += m.cost.gc_base;
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::Setup, self.stats.gc_cycles());
        }

        // --- root processing ---
        let stack_t0 = Instant::now();
        let outcome = scan_stack(m, self.cache.as_mut(), self.marker_policy, &mut self.stats);
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::StackDecode, self.stats.gc_cycles());
        }
        let scan_claim = (outcome.claimed_prefix, outcome.oracle_prefix);
        // A major collection moves tenured objects, so cached frames'
        // roots must be relocated too — but their decode cost is still
        // saved (§5: "it is still advantageous to have amortized the cost
        // of decoding the stack frames").
        let mut roots = outcome.new_roots;
        append_cached_roots(self.cache.as_ref(), outcome.reused_frames, &mut roots);

        let nursery_range = self.nursery.active().range();
        let nursery_frontier = self.nursery.active().frontier();
        debug_assert_eq!(
            self.nursery.inactive().used_words(),
            0,
            "the inactive nursery semispace is empty between collections"
        );
        let tenured_from = self.tenured_live_range();
        let from_ranges = [nursery_range, tenured_from];
        if let Some(l) = self.los.as_mut() {
            l.begin_marking(&mut self.mem);
            l.pending_scan.clear();
        }
        let t_to = self.tenured.inactive_mut();
        t_to.set_limit_words(t_to.max_capacity_words());
        // Parallel lane needs headroom for abandoned chunk tails; tight
        // heaps and profiling runs fall back to the serial oracle.
        let from_used =
            (nursery_frontier - nursery_range.start) + (tenured_from.end - tenured_from.start);
        let parallel = self.workers > 1
            && self.profile.is_none()
            && t_to.free_words() >= from_used + crate::scheduler::slack_budget_words(self.workers);
        let mut evac = Evacuator::new(
            &mut self.mem,
            &from_ranges,
            t_to,
            Some(nursery_range),
            self.los.as_mut(),
            self.profile.as_mut(),
            &mut self.stats,
            m.cost,
        );
        if timer.is_some() || self.adaptive.is_some() {
            evac.set_telemetry(self.telem.get_or_insert_with(TelemetryAcc::default));
        }
        if parallel {
            evac.set_workers(self.workers, self.packet_reorder);
            if !self.fault_fired {
                evac.set_worker_fault(self.worker_fault);
            }
            evac.set_watchdog_ms(self.watchdog_ms);
            evac.set_cycle_budget(self.worker_cycle_budget);
        }
        evac.forward_roots(m, &roots);
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::RootScan, evac.current_gc_cycles());
        }
        let stack_ns = stack_t0.elapsed().as_nanos() as u64;

        // --- copying ---
        let copy_t0 = Instant::now();
        // The full trace subsumes the write barrier; drop its contents.
        m.barrier.drain(|_| {});
        // Pending pretenured/oversized objects are ordinary tenured
        // objects for a major collection: traced if reachable.
        if let Some(p) = self.pretenured.as_mut() {
            p.clear_pending();
        }
        self.oversized_pending.clear();
        self.young_refs.clear();
        self.young_locs.clear();
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::BarrierFilter, evac.current_gc_cycles());
        }
        evac.drain();
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::CheneyCopy, evac.current_gc_cycles());
        }
        let workers_used = if evac.parallel() {
            self.workers as u64
        } else {
            1
        };
        let worker_copied = evac.worker_copied().to_vec();
        let fault = evac.fault_outcome();
        let copy_ns = copy_t0.elapsed().as_nanos() as u64;

        sweep_profile_deaths(
            &self.mem,
            self.profile.as_mut(),
            nursery_range.start,
            nursery_frontier,
        );
        sweep_profile_deaths(
            &self.mem,
            self.profile.as_mut(),
            tenured_from.start,
            tenured_from.end,
        );
        if let Some(l) = self.los.as_mut() {
            let swept = l.sweep(&self.mem);
            if let Some(p) = self.profile.as_mut() {
                for addr in swept {
                    p.on_death(addr);
                }
            }
        }

        poison_range(&mut self.mem, nursery_range, nursery_frontier);
        self.mem.bulk_clear_dirty(nursery_range);
        self.nursery.active_mut().reset();
        let tenured_full = self.tenured.active().range();
        poison_range(&mut self.mem, tenured_from, tenured_from.end);
        // The vacated tenured semispace sheds its barrier dirty bits in
        // one sweep; the next major's copies land on clean metadata.
        self.mem.bulk_clear_dirty(tenured_full);
        self.tenured.active_mut().reset();
        self.tenured.flip();

        let tenured_before = tenured_from.end - tenured_from.start;
        let tenured_after = self.tenured.active().used_words();
        self.last_major_reclaim = if tenured_before == 0 {
            0.0
        } else {
            1.0 - (tenured_after as f64 / tenured_before as f64).min(1.0)
        };
        if self.adaptive_major && !self.semispace_mode {
            // Enter semispace mode when tenured data keeps dying fast —
            // either a single major reclaimed most of the generation, or
            // majors dominate the recent collection mix (promotion through
            // the nursery is pure double-copying then).
            // (A majors-dominate-the-mix trigger was also evaluated; it
            // enters the mode exactly when the tenured arena is too tight
            // for semispace-style operation to help, so only the reclaim
            // signal is used. EXPERIMENTS.md records the comparison.)
            let _recent_majors = self.recent_major_bits.count_ones();
            if self.last_major_reclaim > 0.6 {
                self.semispace_mode = true;
                self.mode_age = 0;
            }
        }
        let live_words = tenured_after + self.los.as_ref().map_or(0, |l| l.used_words());
        if fault.fired {
            self.fault_fired = true;
        }
        self.stats.workers_lost += fault.workers_lost;
        self.stats.degraded_collections += u64::from(fault.degraded);
        self.apply_limits(live_words);
        // Live tenured data past its budget share is not a panic here:
        // `set_limit_words` clamps the limit up to the used words, so
        // the *next* allocation fails typed and the governor's ladder
        // (rebalance, demotion) or a `HeapOverflow` raise handles it.
        // The overrun is counted so calibration harnesses can tell this
        // run was not pressure-free even if every allocation succeeds.
        if self.tenured.active().used_words() > self.tenured_max_words() {
            self.stats.budget_overruns += 1;
        }
        self.stats
            .note_live_bytes(tilgc_mem::words_to_bytes(live_words) as u64);
        self.stats.stack_wall_ns += stack_ns;
        self.stats.copy_wall_ns += copy_ns;
        let total_ns = wall_start.elapsed().as_nanos() as u64;
        self.stats.total_wall_ns += total_ns;
        crate::verify::check_worker_accounting(
            workers_used,
            &worker_copied,
            self.stats.copied_bytes - stats_before.copied_bytes,
        );
        self.inspection = Some(build_inspection(
            &stats_before,
            &self.stats,
            true,
            depth_at_gc,
            true,
            scan_claim,
        ));
        self.adapt(m, true);
        let side_cleared = self.mem.side_cleared_words() - side_cleared_before;
        self.end_telemetry(
            m,
            timer,
            &stats_before,
            total_ns,
            workers_used,
            worker_copied,
            side_cleared,
            fault,
        );
    }

    /// Scans young large pointer arrays (initializing stores may reference
    /// the nursery) before a minor collection's drain.
    fn take_los_pending(&mut self) -> Vec<Addr> {
        self.los
            .as_mut()
            .map(|l| std::mem::take(&mut l.pending_scan))
            .unwrap_or_default()
    }

    /// One allocation attempt against the nursery. A forced-failure
    /// token is consumed first, so fault injection fails each *attempt*
    /// (not each logical allocation) and drives the full ladder.
    fn nursery_attempt_fits(&self, m: &mut MutatorState, words: usize) -> bool {
        !m.consume_forced_failure() && self.nursery.active().fits(words)
    }

    /// One allocation attempt against the tenured generation.
    fn tenured_attempt_fits(&self, m: &mut MutatorState, words: usize) -> bool {
        !m.consume_forced_failure() && self.tenured.active().fits(words)
    }

    /// One allocation attempt against the large-object space.
    fn los_attempt_alloc(&mut self, m: &mut MutatorState, words: usize) -> Option<Addr> {
        if m.consume_forced_failure() {
            return None;
        }
        self.los.as_mut().expect("LOS routing checked").alloc(words)
    }

    /// The budget picture at the moment an arena gave out.
    fn snapshot(&self, space: &'static str) -> BudgetSnapshot {
        let (free_words, live_words) = match space {
            "nursery" => (
                self.nursery.active().free_words(),
                self.nursery.active().used_words(),
            ),
            "los" => {
                let used = self.los.as_ref().map_or(0, |l| l.used_words());
                let committed = self.nursery_words + 2 * self.tenured.active().used_words() + used;
                (self.budget_words.saturating_sub(committed), used)
            }
            _ => (
                self.tenured.active().free_words(),
                self.tenured.active().used_words(),
            ),
        };
        BudgetSnapshot {
            budget_words: self.budget_words,
            free_words,
            live_words,
        }
    }

    /// The governor's one-shot rebalance rung: halves the nursery's
    /// budget share in favor of the tenured generation. Deterministic
    /// and irreversible — a plan rebalances at most once.
    fn rebalance(&mut self) {
        self.rebalanced = true;
        self.nursery_words = (self.nursery_words / 2).max(64);
        self.nursery.set_limit_words(self.nursery_words);
        let live =
            self.tenured.active().used_words() + self.los.as_ref().map_or(0, |l| l.used_words());
        self.apply_limits(live);
    }

    /// Climbs the tenured-arena rungs shared by the pretenure and
    /// oversized paths — retry-major, then the one-shot rebalance —
    /// after the ordinary slow path (one major collection) has already
    /// failed. Returns whether `words` now fit the active tenured half.
    fn climb_tenured_ladder(
        &mut self,
        m: &mut MutatorState,
        session: &mut PressureSession,
        words: usize,
    ) -> bool {
        let charged = session.charge(m, &mut self.stats, PressureRung::RetryMajor);
        self.major(m, "alloc-failure");
        if self.tenured_attempt_fits(m, words) {
            session.emit_rung(m, PressureRung::RetryMajor, "recovered", charged);
            return true;
        }
        session.emit_rung(m, PressureRung::RetryMajor, "escalated", charged);
        if !self.rebalanced {
            let charged = session.charge(m, &mut self.stats, PressureRung::Rebalance);
            self.rebalance();
            if self.tenured_attempt_fits(m, words) {
                session.emit_rung(m, PressureRung::Rebalance, "recovered", charged);
                return true;
            }
            session.emit_rung(m, PressureRung::Rebalance, "escalated", charged);
        }
        false
    }

    /// Bump-allocates into the active tenured half, which the caller
    /// has checked (or recovered) to fit.
    fn finish_tenured_alloc(&mut self, m: &mut MutatorState, shape: AllocShape) -> Addr {
        let buf = std::mem::take(&mut m.alloc_buf);
        let addr = alloc_in_space(&mut self.mem, self.tenured.active_mut(), shape, &buf)
            .expect("tenured space was checked to fit");
        m.alloc_buf = buf;
        addr
    }

    /// The large-array path: mark-sweep placement with a ladder of one
    /// retry-major rung (rebalancing cannot grow the LOS reservation).
    fn alloc_large(&mut self, m: &mut MutatorState, shape: AllocShape) -> Result<Addr, GcError> {
        let words = shape.size_words();
        let mut addr = self.los_attempt_alloc(m, words);
        if addr.is_none() {
            // Ordinary slow path: a major collection sweeps dead blocks.
            self.major(m, "alloc-failure");
            addr = self.los_attempt_alloc(m, words);
        }
        let addr = match addr {
            Some(a) => a,
            None => {
                let mut session = PressureSession::begin(
                    m,
                    &mut self.stats,
                    shape.site().get(),
                    words as u64,
                    "los",
                );
                let charged = session.charge(m, &mut self.stats, PressureRung::RetryMajor);
                self.major(m, "alloc-failure");
                match self.los_attempt_alloc(m, words) {
                    Some(a) => {
                        session.emit_rung(m, PressureRung::RetryMajor, "recovered", charged);
                        session.finish(m, "recovered");
                        a
                    }
                    None => {
                        session.emit_rung(m, PressureRung::RetryMajor, "escalated", charged);
                        session.finish(m, "exhausted");
                        return Err(GcError::LargeObjectExhausted {
                            kind: shape.kind(),
                            requested_words: words,
                            budget: self.snapshot("los"),
                        });
                    }
                }
            }
        };
        let buf = std::mem::take(&mut m.alloc_buf);
        materialize(&mut self.mem, addr, shape, &buf);
        m.alloc_buf = buf;
        if matches!(shape, AllocShape::PtrArray { .. }) {
            // The initializing store may reference the nursery.
            self.los
                .as_mut()
                .expect("LOS routing checked")
                .pending_scan
                .push(addr);
        }
        if let Some(prof) = self.profile.as_mut() {
            prof.on_alloc(addr, shape.site(), shape.size_bytes());
        }
        Ok(addr)
    }

    /// The pretenuring path: tenured-at-birth placement whose last
    /// ladder rung demotes pretenured sites (hottest first) back to
    /// nursery allocation until this site re-routes young.
    fn alloc_pretenured(
        &mut self,
        m: &mut MutatorState,
        shape: AllocShape,
    ) -> Result<Addr, GcError> {
        let words = shape.size_words();
        let site = shape.site();
        m.charge(m.cost.pretenure_alloc_extra);
        if !self.tenured_attempt_fits(m, words) {
            self.major(m, "alloc-failure");
            if !self.tenured_attempt_fits(m, words) {
                let mut session =
                    PressureSession::begin(m, &mut self.stats, site.get(), words as u64, "tenured");
                if !self.climb_tenured_ladder(m, &mut session, words) {
                    while self
                        .pretenured
                        .as_ref()
                        .is_some_and(|p| p.should_pretenure(site))
                    {
                        let charged = session.charge(m, &mut self.stats, PressureRung::Demote);
                        let demoted = self
                            .pretenured
                            .as_mut()
                            .expect("pretenure routing checked")
                            .demote_hottest()
                            .expect("`site` is still pretenured");
                        if let Some(p) = self.profile.as_mut() {
                            p.note_demotion(demoted);
                        }
                        // A governor demotion while adaptation is on is
                        // a policy flip like any other: sync the
                        // estimator's view (starting the site's
                        // cooldown), count it, and emit the event with
                        // its distinct reason.
                        if let Some(a) = self.adaptive.as_mut() {
                            let collection = self.stats.collections;
                            a.note_forced_demotion(demoted, collection);
                            self.stats.sites_demoted += 1;
                            if m.recorder.is_enabled() {
                                m.recorder.record(Event::SiteDemote(SiteDemote {
                                    collection,
                                    site: demoted.get(),
                                    survival_permille: a.survival_permille(demoted).unwrap_or(0),
                                    reason: "pressure",
                                }));
                            }
                        }
                        session.emit_rung(m, PressureRung::Demote, "demoted", charged);
                    }
                    session.finish(m, "recovered");
                    // The site now allocates young: re-route through the
                    // ordinary paths (nursery, or oversized fallback).
                    return self.alloc_inner(m, shape);
                }
                session.finish(m, "recovered");
            }
        }
        let addr = self.finish_tenured_alloc(m, shape);
        self.stats.pretenured_bytes += shape.size_bytes() as u64;
        // §7.2: "some areas may require no scanning because they
        // contain no pointers" — pointer-free objects never make
        // it onto the pending-scan list, and neither do objects
        // from sites the no-scan analysis cleared.
        let pointer_free = match shape {
            AllocShape::Record { mask, .. } => mask == 0,
            AllocShape::PtrArray { .. } => false,
            AllocShape::RawArray { .. } => true,
        };
        self.pretenured
            .as_mut()
            .expect("pretenure routing checked")
            .note_alloc(addr, site, words, pointer_free);
        if let Some(prof) = self.profile.as_mut() {
            prof.on_alloc(addr, site, shape.size_bytes());
        }
        Ok(addr)
    }

    /// Allocation with the telemetry note already taken: the routing and
    /// per-path ladders. Recurses (once) after a demotion re-route.
    fn alloc_inner(&mut self, m: &mut MutatorState, shape: AllocShape) -> Result<Addr, GcError> {
        let words = shape.size_words();
        let site = shape.site();

        // Large arrays bypass the nursery (§2.1) — checked before the
        // pretenuring policy because a mark-sweep-managed array is never
        // copied anyway, which strictly dominates tenured placement.
        // Arrays that would not even fit an empty nursery are routed here
        // regardless of the configured threshold.
        let is_array = !matches!(shape, AllocShape::Record { .. });
        let over_threshold = self.large_object_words > 0 && words >= self.large_object_words;
        if self.los.is_some()
            && is_array
            && (over_threshold || words > self.nursery.active().capacity_words())
        {
            return self.alloc_large(m, shape);
        }

        // Profile-driven pretenuring: straight to the tenured generation.
        if self
            .pretenured
            .as_ref()
            .is_some_and(|p| p.should_pretenure(site))
        {
            return self.alloc_pretenured(m, shape);
        }

        // §9 semispace mode: the whole tenured semispace is the
        // allocation arena; every collection is a full collection, so no
        // promotion copying and no region scans are needed.
        if self.semispace_mode {
            if !self.tenured_attempt_fits(m, words) {
                self.major(m, "alloc-failure");
            }
            if self.semispace_mode && self.tenured_attempt_fits(m, words) {
                let addr = self.finish_tenured_alloc(m, shape);
                if let Some(prof) = self.profile.as_mut() {
                    prof.on_alloc(addr, site, shape.size_bytes());
                }
                return Ok(addr);
            }
            // Mode flipped off (or space still tight): fall through to the
            // generational paths below.
        }

        // Objects too big for the nursery but with no large-object space
        // to go to (or non-array records) are tenured at birth, with the
        // same deferred in-place scan pretenured objects get.
        if words > self.nursery.active().capacity_words() {
            if !self.tenured_attempt_fits(m, words) {
                self.major(m, "alloc-failure");
                if !self.tenured_attempt_fits(m, words) {
                    let mut session = PressureSession::begin(
                        m,
                        &mut self.stats,
                        site.get(),
                        words as u64,
                        "tenured",
                    );
                    if !self.climb_tenured_ladder(m, &mut session, words) {
                        session.finish(m, "exhausted");
                        return Err(GcError::TenuredExhausted {
                            kind: shape.kind(),
                            requested_words: words,
                            budget: self.snapshot("tenured"),
                        });
                    }
                    session.finish(m, "recovered");
                }
            }
            let addr = self.finish_tenured_alloc(m, shape);
            match self.pretenured.as_mut() {
                Some(p) => p.defer_scan(addr),
                None => {
                    // No pretenure machinery: reuse the LOS pending list
                    // if present, else fall back to an immediate barrier
                    // record so the next minor collection scans it.
                    if let Some(l) = self.los.as_mut() {
                        l.pending_scan.push(addr);
                    } else {
                        self.oversized_pending.push(addr);
                    }
                }
            }
            if let Some(prof) = self.profile.as_mut() {
                prof.on_alloc(addr, site, shape.size_bytes());
            }
            return Ok(addr);
        }

        // Ordinary nursery allocation.
        if !self.nursery_attempt_fits(m, words) {
            self.collect(m, CollectReason::AllocFailure);
            if !self.nursery_attempt_fits(m, words) {
                // Accumulated copied-back survivors can crowd the nursery
                // system; a major collection promotes them all.
                self.major(m, "alloc-failure");
                if !self.nursery_attempt_fits(m, words) {
                    let mut session = PressureSession::begin(
                        m,
                        &mut self.stats,
                        site.get(),
                        words as u64,
                        "nursery",
                    );
                    let charged = session.charge(m, &mut self.stats, PressureRung::RetryMinor);
                    self.minor(m, "alloc-failure");
                    if self.nursery_attempt_fits(m, words) {
                        session.emit_rung(m, PressureRung::RetryMinor, "recovered", charged);
                        session.finish(m, "recovered");
                    } else {
                        session.emit_rung(m, PressureRung::RetryMinor, "escalated", charged);
                        let charged = session.charge(m, &mut self.stats, PressureRung::RetryMajor);
                        self.major(m, "alloc-failure");
                        if self.nursery_attempt_fits(m, words) {
                            session.emit_rung(m, PressureRung::RetryMajor, "recovered", charged);
                            session.finish(m, "recovered");
                        } else {
                            session.emit_rung(m, PressureRung::RetryMajor, "escalated", charged);
                            session.finish(m, "exhausted");
                            return Err(GcError::NurseryExhausted {
                                kind: shape.kind(),
                                requested_words: words,
                                budget: self.snapshot("nursery"),
                            });
                        }
                    }
                }
            }
        }
        let buf = std::mem::take(&mut m.alloc_buf);
        let addr = alloc_in_space(&mut self.mem, self.nursery.active_mut(), shape, &buf)
            .expect("nursery was checked to fit");
        m.alloc_buf = buf;
        if let Some(prof) = self.profile.as_mut() {
            prof.on_alloc(addr, site, shape.size_bytes());
        }
        Ok(addr)
    }
}

impl Plan for GenerationalPlan {
    fn name(&self) -> &'static str {
        "generational"
    }

    fn memory(&self) -> &Memory {
        &self.mem
    }

    fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    fn alloc(&mut self, m: &mut MutatorState, shape: AllocShape) -> Result<Addr, GcError> {
        if m.recorder.is_enabled() || self.adaptive.is_some() {
            // Counted before routing (and before any demotion re-route)
            // so every allocation path (LOS, pretenure, semispace mode,
            // oversized, nursery) feeds the same per-site time-series.
            // The adaptive estimator consumes the same windows the
            // recorder samples, so it keeps them flowing recorder or no.
            self.telem
                .get_or_insert_with(TelemetryAcc::default)
                .note_alloc(shape.site().get(), shape.size_bytes() as u64);
        }
        self.alloc_inner(m, shape)
    }

    fn collect(&mut self, m: &mut MutatorState, reason: CollectReason) {
        let why = reason_str(reason);
        match reason {
            CollectReason::ForcedMajor => self.major(m, why),
            CollectReason::Forced | CollectReason::AllocFailure => {
                if self.semispace_mode {
                    self.mode_age += 1;
                    if self.mode_age >= 32 {
                        // Probation: drop back to generational operation
                        // and let the window re-decide.
                        self.semispace_mode = false;
                        self.recent_major_bits = 0;
                    }
                    self.major(m, why);
                } else {
                    let is_major = self.needs_major();
                    self.recent_major_bits =
                        (self.recent_major_bits << 1 | u32::from(is_major)) & 0xffff;
                    if is_major {
                        self.major(m, why);
                    } else {
                        self.minor(m, why);
                    }
                }
            }
        }
    }

    fn gc_stats(&self) -> &GcStats {
        &self.stats
    }

    fn finish(&mut self, _m: &mut MutatorState) {
        if let Some(p) = self.profile.as_mut() {
            p.finish();
        }
    }

    fn take_profile(&mut self) -> Option<HeapProfile> {
        self.profile.take()
    }

    fn last_inspection(&self) -> Option<&CollectionInspection> {
        self.inspection.as_ref()
    }
}
