//! The heap-pressure governor: the deterministic escalation ladder a
//! plan climbs when an allocation does not fit.
//!
//! Each rung is a recovery attempt with a fixed simulated cost from the
//! [`CostModel`](tilgc_runtime::CostModel):
//!
//! 1. **retry-minor** — collect the nursery and retry (the generational
//!    plans' ordinary slow path, free of extra charge beyond the
//!    collection itself; only *re*-tries after a first failure are
//!    charged as rungs);
//! 2. **retry-major** — collect the whole heap and retry;
//! 3. **rebalance** — a one-shot budget rebalance that shrinks the
//!    nursery's share in favor of the tenured generation;
//! 4. **demote** — flip the highest-pressure pretenured site back to
//!    nursery allocation and retry through the young path.
//!
//! Rung costs are charged to `GcStats::other_cycles` *before* the rung's
//! recovery work runs, so they land outside any telemetry phase-timer
//! window and the global identity `sum(phase cycles) + sum(rung cycles)
//! == gc_cycles` holds exactly. When no recorder is installed the ladder
//! emits nothing and charges the same cycles, so a recovered-pressure
//! run is byte-deterministic with or without telemetry.
//!
//! A ladder with no rung left returns the typed
//! [`GcError`](tilgc_mem::GcError) to the plan, which surfaces it to the
//! VM as a catchable `HeapOverflow` — never a Rust panic.

use tilgc_obs::{Event, PressureBegin, PressureEnd, PressureRung as RungEvent};
use tilgc_runtime::{CostModel, GcStats, MutatorState};

/// One rung of the escalation ladder, in climb order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PressureRung {
    /// Retry after a (repeated) minor collection.
    RetryMinor,
    /// Retry after a full-heap collection.
    RetryMajor,
    /// One-shot nursery/tenured budget rebalance.
    Rebalance,
    /// Demote the hottest pretenured site back to the nursery.
    Demote,
}

impl PressureRung {
    /// The name used on the telemetry wire.
    pub(crate) fn wire_name(self) -> &'static str {
        match self {
            PressureRung::RetryMinor => "retry-minor",
            PressureRung::RetryMajor => "retry-major",
            PressureRung::Rebalance => "rebalance",
            PressureRung::Demote => "demote",
        }
    }

    /// Simulated cycles the rung charges (on top of any collection it
    /// triggers, which bills itself as usual).
    pub(crate) fn cost(self, cost: &CostModel) -> u64 {
        match self {
            PressureRung::RetryMinor | PressureRung::RetryMajor => cost.pressure_retry,
            PressureRung::Rebalance => cost.pressure_rebalance,
            PressureRung::Demote => cost.pressure_demote,
        }
    }
}

/// One pressure episode: from the first unrecoverable-by-the-ordinary-
/// slow-path allocation failure to either recovery or exhaustion.
pub(crate) struct PressureSession {
    site: u16,
    words: u64,
    rungs: u64,
    cycles: u64,
}

impl PressureSession {
    /// Opens the episode (emitting `pressure-begin` when a recorder is
    /// installed) and counts it in [`GcStats::pressure_episodes`], the
    /// flag calibration harnesses use to reject under-budgeted runs.
    /// `space` names the arena that failed first.
    pub(crate) fn begin(
        m: &mut MutatorState,
        stats: &mut GcStats,
        site: u16,
        words: u64,
        space: &'static str,
    ) -> PressureSession {
        stats.pressure_episodes += 1;
        if m.recorder.is_enabled() {
            m.recorder.record(Event::PressureBegin(PressureBegin {
                site,
                words,
                space,
                start_cycles: m.stats.client_cycles + stats.gc_cycles(),
            }));
        }
        PressureSession {
            site,
            words,
            rungs: 0,
            cycles: 0,
        }
    }

    /// Charges `rung`'s simulated cost — always, recorder or not — and
    /// returns the cycles charged. Call this *before* running the rung's
    /// recovery work so the charge lands outside phase-timer windows.
    pub(crate) fn charge(
        &mut self,
        m: &MutatorState,
        stats: &mut GcStats,
        rung: PressureRung,
    ) -> u64 {
        let cycles = rung.cost(&m.cost);
        stats.other_cycles += cycles;
        self.rungs += 1;
        self.cycles += cycles;
        cycles
    }

    /// Emits the rung's `pressure-rung` line with its outcome
    /// (`"recovered"`, `"escalated"`, or `"demoted"`).
    pub(crate) fn emit_rung(
        &self,
        m: &mut MutatorState,
        rung: PressureRung,
        outcome: &'static str,
        cycles: u64,
    ) {
        if m.recorder.is_enabled() {
            m.recorder.record(Event::PressureRung(RungEvent {
                rung: rung.wire_name(),
                site: self.site,
                words: self.words,
                outcome,
                cycles,
            }));
        }
    }

    /// Closes the episode (`outcome` is `"recovered"` or `"exhausted"`),
    /// emitting the `pressure-end` line whose cycle total the validator
    /// checks against the rung sum.
    pub(crate) fn finish(self, m: &mut MutatorState, outcome: &'static str) {
        if m.recorder.is_enabled() {
            m.recorder.record(Event::PressureEnd(PressureEnd {
                outcome,
                rungs: self.rungs,
                cycles: self.cycles,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_costs_come_from_the_cost_model() {
        let cost = CostModel::default();
        assert_eq!(PressureRung::RetryMinor.cost(&cost), cost.pressure_retry);
        assert_eq!(PressureRung::RetryMajor.cost(&cost), cost.pressure_retry);
        assert_eq!(PressureRung::Rebalance.cost(&cost), cost.pressure_rebalance);
        assert_eq!(PressureRung::Demote.cost(&cost), cost.pressure_demote);
        assert_eq!(PressureRung::Demote.wire_name(), "demote");
    }

    #[test]
    fn charges_accumulate_without_a_recorder() {
        let mut m = MutatorState::new();
        let mut stats = GcStats::default();
        let mut session = PressureSession::begin(&mut m, &mut stats, 3, 16, "nursery");
        assert_eq!(stats.pressure_episodes, 1);
        let c1 = session.charge(&m, &mut stats, PressureRung::RetryMajor);
        session.emit_rung(&mut m, PressureRung::RetryMajor, "escalated", c1);
        let c2 = session.charge(&m, &mut stats, PressureRung::Rebalance);
        session.emit_rung(&mut m, PressureRung::Rebalance, "recovered", c2);
        assert_eq!(stats.other_cycles, c1 + c2);
        assert_eq!(session.rungs, 2);
        assert_eq!(session.cycles, c1 + c2);
        session.finish(&mut m, "recovered");
    }
}
