//! Root-set computation: the two-pass stack scan of §2.3, extended with
//! the scan cache of §5 (*generational stack collection*).
//!
//! The scan cannot decode frames in isolation: a slot traced as
//! `CalleeSave($r)` holds whatever the *caller* had in `$r`, and a
//! `Compute` slot needs a runtime type fetched from another location. So
//! the scan walks from the initial frame upward, threading a register
//! pointerness state through every frame's declared register effects —
//! the "two-pass" structure the paper describes (the downward
//! frame-boundary discovery pass is implicit in the simulation, but its
//! cost is charged per decoded frame).
//!
//! With a [`ScanCache`], frames below the stack's
//! [`reusable_prefix`](tilgc_runtime::Stack::reusable_prefix) are not
//! re-decoded: their root-slot lists and the register state at the cache
//! boundary are reused from the previous collection.
//!
//! Plans feed the result into the tracing driver: [`scan_stack`] yields
//! the freshly decoded roots, [`append_cached_roots`] expands the cached
//! prefix when a collection moves everything (every plan except the
//! immediate-promotion minor, whose cached frames contribute no roots at
//! all — the §5 payoff), and
//! [`Evacuator::forward_roots`](crate::Evacuator::forward_roots)
//! processes the combined list.

use std::sync::Arc;

use tilgc_runtime::trace::{RegEffect, Trace, TypeLoc, NUM_REGS};
use tilgc_runtime::{type_word_is_pointer, GcStats, MutatorState, RaiseBookkeeping, ShadowTag};

use crate::config::MarkerPolicy;

/// Bitmask of registers currently known to hold pointers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegState(u32);

impl RegState {
    /// The initial state: no register holds a pointer.
    pub const EMPTY: RegState = RegState(0);

    /// Whether register `r` holds a pointer.
    #[inline]
    pub fn is_pointer(self, r: usize) -> bool {
        (self.0 >> r) & 1 == 1
    }

    /// Applies one frame's declared register effects.
    pub fn apply(mut self, effects: &[(tilgc_runtime::Reg, RegEffect)]) -> RegState {
        for &(reg, effect) in effects {
            match effect {
                RegEffect::Preserve => {}
                RegEffect::DefPointer => self.0 |= 1 << reg.index(),
                RegEffect::DefNonPointer => self.0 &= !(1 << reg.index()),
            }
        }
        self
    }
}

/// The cached decode of one frame.
#[derive(Clone, Debug)]
pub struct FrameScanInfo {
    /// Slot indices that hold pointers (resolved through callee-save and
    /// compute traces). Shared: frames whose traces are fully static
    /// reference the list precompiled into the trace table rather than a
    /// per-scan copy.
    pub ptr_slots: Arc<[u16]>,
    /// Register pointerness after this frame's effects.
    pub reg_state_after: RegState,
}

/// Scan results cached across collections — the data structure at the
/// heart of generational stack collection.
#[derive(Clone, Debug, Default)]
pub struct ScanCache {
    /// Per-frame cached decodes; index = frame depth.
    pub frames: Vec<FrameScanInfo>,
}

/// The location of one root (a pointer the collector must relocate).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RootLoc {
    /// Slot `slot` of the frame at `depth`.
    Slot {
        /// Frame depth (0 = oldest).
        depth: u32,
        /// Slot index within the frame.
        slot: u16,
    },
    /// A general-purpose register.
    Reg(u8),
    /// Entry `i` of the allocation staging buffer.
    AllocBuf(u16),
}

/// What a scan produced.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Roots in *newly scanned* frames, plus registers and the alloc
    /// buffer. Cached frames' roots are not included — for a minor
    /// collection with immediate promotion they are irrelevant, and for a
    /// major collection the caller pulls them from the cache.
    pub new_roots: Vec<RootLoc>,
    /// Frames whose cached decode was reused.
    pub reused_frames: usize,
    /// Frames decoded from scratch.
    pub scanned_frames: usize,
    /// The cached-prefix claim this scan acted on:
    /// `min(M, deepest intact marker)` clamped to the cache length
    /// (equal to `reused_frames`; recorded separately so plans can
    /// expose the claim for post-collection inspection).
    pub claimed_prefix: usize,
    /// The simulation oracle's true unchanged prefix, captured *before*
    /// marker placement reset the stack's bookkeeping. A correct marker
    /// implementation guarantees `claimed_prefix <= oracle_prefix`.
    pub oracle_prefix: usize,
}

/// Reads the word a root location currently holds.
pub fn read_root(m: &MutatorState, loc: RootLoc) -> u64 {
    match loc {
        RootLoc::Slot { depth, slot } => m.stack.frame(depth as usize).word(slot as usize),
        RootLoc::Reg(r) => m.regs.word(tilgc_runtime::Reg::new(r)),
        RootLoc::AllocBuf(i) => m.alloc_buf[i as usize],
    }
}

/// Writes a (relocated) word back into a root location.
pub fn write_root(m: &mut MutatorState, loc: RootLoc, word: u64) {
    match loc {
        RootLoc::Slot { depth, slot } => {
            m.stack
                .frame_mut(depth as usize)
                .set_word_raw(slot as usize, word);
        }
        RootLoc::Reg(r) => m.regs.set_word_raw(tilgc_runtime::Reg::new(r), word),
        RootLoc::AllocBuf(i) => m.alloc_buf[i as usize] = word,
    }
}

/// Expands the reused (cached) frames' pointer slots into root
/// locations, appending to `roots`.
///
/// The scan cache saves the frame *decode* cost, not root processing:
/// a plan whose collection moves objects the cached frames may reference
/// — the semispace plan always, the generational plans at major
/// collections and (under a §7.2 tenure threshold) at minor ones —
/// feeds the cached slots back through the tracing driver with this
/// helper after [`scan_stack`]. The immediate-promotion minor collection
/// is the one case that skips it: everything a cached frame references
/// is already tenured, so cached frames contribute no roots at all (§5).
pub fn append_cached_roots(
    cache: Option<&ScanCache>,
    reused_frames: usize,
    roots: &mut Vec<RootLoc>,
) {
    if let Some(cache) = cache {
        for (d, info) in cache.frames.iter().enumerate().take(reused_frames) {
            for &slot in info.ptr_slots.iter() {
                roots.push(RootLoc::Slot {
                    depth: d as u32,
                    slot,
                });
            }
        }
    }
}

/// Scans the mutator state for roots.
///
/// * With `cache = None` this is the plain §2.3 full scan.
/// * With a cache, frames under the stack's reusable prefix are skipped
///   (their decodes are reused) and markers are re-placed per `policy`
///   after the scan — §5's generational stack collection.
///
/// Costs are charged to `stats` (`stack_cycles`), including the deferred
/// handler-chain walk when [`RaiseBookkeeping::Deferred`] is active.
///
/// # Panics
///
/// Panics (when `m.check_shadows` is set) if a trace-derived pointerness
/// decision contradicts the mutator's shadow tags — a mis-declared frame
/// descriptor or a bug in the two-pass reconstruction.
pub fn scan_stack(
    m: &mut MutatorState,
    cache: Option<&mut ScanCache>,
    policy: MarkerPolicy,
    stats: &mut GcStats,
) -> ScanOutcome {
    scan_stack_impl(m, cache, policy, stats, true)
}

/// [`scan_stack`] with the bitmap fast path disabled: every frame takes
/// the per-slot `Trace` decode, as before precompilation. Kept for A/B
/// comparison; results and charged costs are identical by construction.
#[cfg(any(test, feature = "kernel-ref"))]
pub fn scan_stack_reference(
    m: &mut MutatorState,
    cache: Option<&mut ScanCache>,
    policy: MarkerPolicy,
    stats: &mut GcStats,
) -> ScanOutcome {
    scan_stack_impl(m, cache, policy, stats, false)
}

fn scan_stack_impl(
    m: &mut MutatorState,
    cache: Option<&mut ScanCache>,
    policy: MarkerPolicy,
    stats: &mut GcStats,
    use_bitmaps: bool,
) -> ScanOutcome {
    let cost = m.cost;
    let mut cycles: u64 = 0;

    // Deferred exception bookkeeping: reconstruct the watermark from the
    // handler chain (§5's alternative implementation).
    if m.raise_mode == RaiseBookkeeping::Deferred {
        let (min, visited) = m.handlers.walk_for_collection();
        cycles += cost.handler_walk * visited as u64;
        if let Some(d) = min {
            m.stack.note_watermark(d);
        }
    }

    let depth = m.stack.depth();
    let reusable = match cache.as_deref() {
        Some(c) => m.stack.reusable_prefix().min(c.frames.len()),
        None => 0,
    };
    cycles += cost.frame_reuse * reusable as u64;

    let mut reg_state = match (reusable, cache.as_deref()) {
        (0, _) | (_, None) => RegState::EMPTY,
        (r, Some(c)) => c.frames[r - 1].reg_state_after,
    };

    let mut outcome = ScanOutcome {
        reused_frames: reusable,
        claimed_prefix: reusable,
        // Read the oracle now: place_markers_at (below) resets it.
        oracle_prefix: m.stack.true_unchanged_prefix(),
        ..Default::default()
    };
    let mut new_infos: Vec<FrameScanInfo> = Vec::with_capacity(depth - reusable);
    let mut slots_seen: u64 = 0;

    for d in reusable..depth {
        let frame = m.stack.frame(d);
        let desc_id = frame.desc();
        let desc = m.traces.desc(desc_id);
        cycles += cost.frame_decode;
        slots_seen += desc.num_slots() as u64;

        // Bitmap fast path: fully static frames were compiled into packed
        // pointer bitmasks at registration, so the scan walks set bits
        // instead of matching a `Trace` per slot — and reuses the
        // precompiled slot list instead of rebuilding it. Shadow checking
        // wants the per-slot decode, so it keeps the reference path. The
        // charge is `slot_trace` per slot either way (static frames have
        // no `Compute` slots, the only per-slot surcharge).
        let compiled = m.traces.compiled(desc_id);
        if use_bitmaps && compiled.is_static() && !m.check_shadows {
            cycles += cost.slot_trace * compiled.num_slots() as u64;
            for (w, &word) in compiled.ptr_bitmap().iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let slot = (w * 64 + bits.trailing_zeros() as usize) as u16;
                    bits &= bits - 1;
                    outcome.new_roots.push(RootLoc::Slot {
                        depth: d as u32,
                        slot,
                    });
                }
            }
            reg_state = reg_state.apply(desc.reg_effects());
            new_infos.push(FrameScanInfo {
                ptr_slots: compiled.ptr_slots(),
                reg_state_after: reg_state,
            });
            continue;
        }

        let mut ptr_slots: Vec<u16> = Vec::new();
        for (i, &trace) in desc.slot_traces().iter().enumerate() {
            cycles += cost.slot_trace;
            let is_ptr = match trace {
                Trace::Pointer => true,
                Trace::NonPointer => false,
                Trace::CalleeSave(r) => reg_state.is_pointer(r.index()),
                Trace::Compute(loc) => {
                    cycles += cost.compute_trace_extra;
                    let type_word = match loc {
                        TypeLoc::Slot(s) => frame.word(s as usize),
                        TypeLoc::Reg(r) => m.regs.word(r),
                    };
                    type_word_is_pointer(type_word)
                }
            };
            if m.check_shadows {
                let shadow_ptr = frame.shadow(i) == ShadowTag::Ptr;
                assert_eq!(
                    is_ptr,
                    shadow_ptr,
                    "trace decode disagrees with shadow for slot {i} (trace {trace:?}) of \
                     frame {d} ({})",
                    desc.name()
                );
            }
            if is_ptr {
                ptr_slots.push(i as u16);
                outcome.new_roots.push(RootLoc::Slot {
                    depth: d as u32,
                    slot: i as u16,
                });
            }
        }
        reg_state = reg_state.apply(desc.reg_effects());
        new_infos.push(FrameScanInfo {
            ptr_slots: ptr_slots.into(),
            reg_state_after: reg_state,
        });
    }
    outcome.scanned_frames = depth - reusable;

    // Registers live across the collection point.
    for r in 0..NUM_REGS {
        cycles += cost.slot_trace;
        let is_ptr = reg_state.is_pointer(r);
        if m.check_shadows {
            let shadow_ptr = m.regs.shadow(tilgc_runtime::Reg::new(r as u8)) == ShadowTag::Ptr;
            assert_eq!(
                is_ptr, shadow_ptr,
                "register ${r} trace state disagrees with shadow"
            );
        }
        if is_ptr {
            outcome.new_roots.push(RootLoc::Reg(r as u8));
        }
    }

    // Allocation staging buffer (argument registers of the allocation in
    // progress).
    for i in 0..m.alloc_buf.len() {
        if (m.alloc_buf_ptr_mask >> i) & 1 == 1 {
            outcome.new_roots.push(RootLoc::AllocBuf(i as u16));
        }
    }

    if let Some(c) = cache {
        c.frames.truncate(reusable);
        c.frames.extend(new_infos);
        let placed = m.stack.place_markers_at(policy.placements(depth));
        cycles += cost.marker_place * placed as u64;
        stats.markers_placed += placed as u64;
    }

    stats.frames_scanned += outcome.scanned_frames as u64;
    stats.frames_reused += outcome.reused_frames as u64;
    stats.slots_scanned += slots_seen;
    stats.stack_cycles += cycles;
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_mem::Addr;
    use tilgc_runtime::{FrameDesc, Reg, Trace, Value, TYPE_BOXED, TYPE_UNBOXED};

    /// Builds a mutator with `depth` frames: slot 0 pointer, slot 1 int.
    fn mutator(depth: usize) -> MutatorState {
        let mut m = MutatorState::new();
        let d = m.traces.register(
            FrameDesc::new("t")
                .slot(Trace::Pointer)
                .slot(Trace::NonPointer),
        );
        for i in 0..depth {
            m.stack.push(d, 2);
            m.stack
                .top_mut()
                .set(0, Value::Ptr(Addr::new(100 + i as u32)));
            m.stack.top_mut().set(1, Value::Int(7));
        }
        m
    }

    #[test]
    fn full_scan_finds_every_pointer_slot() {
        let mut m = mutator(10);
        let mut stats = GcStats::default();
        let out = scan_stack(&mut m, None, MarkerPolicy::Disabled, &mut stats);
        let slot_roots = out
            .new_roots
            .iter()
            .filter(|r| matches!(r, RootLoc::Slot { .. }))
            .count();
        assert_eq!(slot_roots, 10);
        assert_eq!(out.scanned_frames, 10);
        assert_eq!(out.reused_frames, 0);
        assert!(stats.stack_cycles > 0);
    }

    #[test]
    fn cached_scan_skips_old_frames() {
        let mut m = mutator(100);
        let mut stats = GcStats::default();
        let mut cache = ScanCache::default();
        let out = scan_stack(
            &mut m,
            Some(&mut cache),
            MarkerPolicy::EveryN(25),
            &mut stats,
        );
        assert_eq!(out.scanned_frames, 100);
        assert_eq!(cache.frames.len(), 100);

        // Second scan with no mutator activity: reuse up to the deepest
        // marker (depth 99).
        let out2 = scan_stack(
            &mut m,
            Some(&mut cache),
            MarkerPolicy::EveryN(25),
            &mut stats,
        );
        assert_eq!(out2.reused_frames, 99);
        assert_eq!(out2.scanned_frames, 1);
        assert_eq!(cache.frames.len(), 100);
    }

    #[test]
    fn cache_handles_pops_and_regrowth() {
        let mut m = mutator(100);
        let mut stats = GcStats::default();
        let mut cache = ScanCache::default();
        scan_stack(
            &mut m,
            Some(&mut cache),
            MarkerPolicy::EveryN(25),
            &mut stats,
        );
        for _ in 0..30 {
            m.stack.pop(); // fires markers at 99 and 74
        }
        let d = m.stack.frame(0).desc();
        for _ in 0..10 {
            m.stack.push(d, 2);
            m.stack.top_mut().set(0, Value::NULL);
        }
        let out = scan_stack(
            &mut m,
            Some(&mut cache),
            MarkerPolicy::EveryN(25),
            &mut stats,
        );
        assert_eq!(out.reused_frames, 49, "intact marker at 49 bounds reuse");
        assert_eq!(out.scanned_frames, 80 - 49);
        assert_eq!(cache.frames.len(), 80);
    }

    #[test]
    fn callee_save_resolved_through_register_state() {
        let mut m = MutatorState::new();
        // Frame A leaves a pointer in $5; frame B spills $5 to its slot 0.
        let da = m
            .traces
            .register(FrameDesc::new("a").def_pointer(Reg::new(5)));
        let db = m
            .traces
            .register(FrameDesc::new("b").slot(Trace::CalleeSave(Reg::new(5))));
        m.stack.push(da, 0);
        m.regs.set(Reg::new(5), Value::Ptr(Addr::new(64)));
        m.stack.push(db, 1);
        // Spill (the VM does this automatically; done by hand here).
        m.stack.top_mut().set_word_tagged(0, 64, ShadowTag::Ptr);

        let mut stats = GcStats::default();
        let out = scan_stack(&mut m, None, MarkerPolicy::Disabled, &mut stats);
        assert!(out.new_roots.contains(&RootLoc::Slot { depth: 1, slot: 0 }));
        // $5 is still pointer-valued at the top, so it is a register root.
        assert!(out.new_roots.contains(&RootLoc::Reg(5)));
    }

    #[test]
    fn callee_save_of_non_pointer_is_not_a_root() {
        let mut m = MutatorState::new();
        let da = m
            .traces
            .register(FrameDesc::new("a").def_non_pointer(Reg::new(5)));
        let db = m
            .traces
            .register(FrameDesc::new("b").slot(Trace::CalleeSave(Reg::new(5))));
        m.stack.push(da, 0);
        m.regs.set(Reg::new(5), Value::Int(999));
        m.stack.push(db, 1);
        m.stack.top_mut().set_word_tagged(0, 999, ShadowTag::NonPtr);

        let mut stats = GcStats::default();
        let out = scan_stack(&mut m, None, MarkerPolicy::Disabled, &mut stats);
        assert!(out.new_roots.is_empty());
    }

    #[test]
    fn compute_trace_consults_runtime_type() {
        let mut m = MutatorState::new();
        let d = m.traces.register(
            FrameDesc::new("poly")
                .slot(Trace::NonPointer) // slot 0: the runtime type
                .slot(Trace::Compute(TypeLoc::Slot(0))), // slot 1: polymorphic value
        );
        m.stack.push(d, 2);
        m.stack.top_mut().set(0, Value::Int(TYPE_BOXED));
        m.stack.top_mut().set(1, Value::Ptr(Addr::new(640)));
        let mut stats = GcStats::default();
        let out = scan_stack(&mut m, None, MarkerPolicy::Disabled, &mut stats);
        assert!(out.new_roots.contains(&RootLoc::Slot { depth: 0, slot: 1 }));

        // Flip the type to unboxed: same slot, now not a root.
        m.stack.top_mut().set(0, Value::Int(TYPE_UNBOXED));
        m.stack.top_mut().set(1, Value::Int(640));
        let out = scan_stack(&mut m, None, MarkerPolicy::Disabled, &mut stats);
        assert_eq!(
            out.new_roots
                .iter()
                .filter(|r| matches!(r, RootLoc::Slot { .. }))
                .count(),
            0
        );
    }

    #[test]
    #[should_panic(expected = "disagrees with shadow")]
    fn misdeclared_descriptor_is_caught() {
        let mut m = MutatorState::new();
        let d = m
            .traces
            .register(FrameDesc::new("bad").slot(Trace::NonPointer));
        m.stack.push(d, 1);
        // The mutator writes a pointer into a slot declared non-pointer:
        // in the real system this hides a root. The shadow check trips.
        m.stack.top_mut().set_word_tagged(0, 640, ShadowTag::Ptr);
        let mut stats = GcStats::default();
        scan_stack(&mut m, None, MarkerPolicy::Disabled, &mut stats);
    }

    #[test]
    fn alloc_buf_entries_are_roots() {
        let mut m = MutatorState::new();
        m.alloc_buf = vec![640, 7, 888];
        m.alloc_buf_ptr_mask = 0b101;
        let mut stats = GcStats::default();
        let out = scan_stack(&mut m, None, MarkerPolicy::Disabled, &mut stats);
        assert!(out.new_roots.contains(&RootLoc::AllocBuf(0)));
        assert!(out.new_roots.contains(&RootLoc::AllocBuf(2)));
        assert!(!out.new_roots.contains(&RootLoc::AllocBuf(1)));
    }

    #[test]
    fn deferred_raise_mode_reconstructs_the_watermark_at_scan_time() {
        use tilgc_runtime::RaiseBookkeeping;
        let mut m = mutator(100);
        m.raise_mode = RaiseBookkeeping::Deferred;
        let mut stats = GcStats::default();
        let mut cache = ScanCache::default();
        scan_stack(
            &mut m,
            Some(&mut cache),
            MarkerPolicy::EveryN(10),
            &mut stats,
        );

        // A raise to depth 30 — with deferred bookkeeping the stack's
        // watermark is NOT updated at raise time...
        m.handlers.push(30);
        let target = m.handlers.raise().expect("handler installed");
        m.stack.unwind_for_raise_silent(target);
        assert_eq!(
            m.stack.watermark(),
            usize::MAX,
            "deferred: no watermark at raise"
        );

        // ...the intact markers above 30 would wrongly promise reuse...
        let d = m.stack.frame(0).desc();
        for _ in 0..70 {
            m.stack.push(d, 2);
            m.stack.top_mut().set(0, crate::roots::tests::null_ptr());
        }
        // ...but the next scan walks the handler chain first and clamps.
        let out = scan_stack(
            &mut m,
            Some(&mut cache),
            MarkerPolicy::EveryN(10),
            &mut stats,
        );
        assert!(
            out.reused_frames <= 30,
            "deferred walk must cap reuse at the raise depth, got {}",
            out.reused_frames
        );
    }

    pub(super) fn null_ptr() -> tilgc_runtime::Value {
        tilgc_runtime::Value::NULL
    }

    /// The bitmap fast path must be observably identical to the per-slot
    /// reference decode: same roots in the same order, same cached
    /// decodes, same charged costs.
    #[test]
    fn bitmap_path_matches_reference_scan() {
        let build = || {
            let mut m = MutatorState::new();
            m.check_shadows = false; // enable the bitmap fast path
            let stat = m.traces.register(
                FrameDesc::new("static")
                    .slot(Trace::Pointer)
                    .slot(Trace::NonPointer)
                    .slot(Trace::Pointer)
                    .def_pointer(Reg::new(7)),
            );
            let dynamic = m.traces.register(
                FrameDesc::new("dynamic")
                    .slot(Trace::CalleeSave(Reg::new(7)))
                    .slot(Trace::NonPointer)
                    .slot(Trace::Compute(TypeLoc::Slot(1))),
            );
            for i in 0..40 {
                if i % 5 == 4 {
                    m.stack.push(dynamic, 3);
                    m.stack.top_mut().set_word_tagged(0, 64, ShadowTag::Ptr);
                    m.stack.top_mut().set(1, Value::Int(TYPE_UNBOXED));
                    m.stack.top_mut().set(2, Value::Int(9));
                } else {
                    m.stack.push(stat, 3);
                    m.stack.top_mut().set(0, Value::Ptr(Addr::new(100 + i)));
                    m.stack.top_mut().set(1, Value::Int(7));
                    m.stack.top_mut().set(2, Value::Ptr(Addr::new(200 + i)));
                }
            }
            m
        };

        let mut m_fast = build();
        let mut m_ref = build();
        let mut stats_fast = GcStats::default();
        let mut stats_ref = GcStats::default();
        let mut cache_fast = ScanCache::default();
        let mut cache_ref = ScanCache::default();
        let out_fast = scan_stack(
            &mut m_fast,
            Some(&mut cache_fast),
            MarkerPolicy::EveryN(8),
            &mut stats_fast,
        );
        let out_ref = scan_stack_reference(
            &mut m_ref,
            Some(&mut cache_ref),
            MarkerPolicy::EveryN(8),
            &mut stats_ref,
        );

        assert_eq!(out_fast.new_roots, out_ref.new_roots);
        assert_eq!(out_fast.scanned_frames, out_ref.scanned_frames);
        assert_eq!(out_fast.reused_frames, out_ref.reused_frames);
        assert_eq!(stats_fast, stats_ref);
        assert_eq!(cache_fast.frames.len(), cache_ref.frames.len());
        for (f, r) in cache_fast.frames.iter().zip(cache_ref.frames.iter()) {
            assert_eq!(&*f.ptr_slots, &*r.ptr_slots);
            assert_eq!(f.reg_state_after, r.reg_state_after);
        }
    }

    #[test]
    fn root_read_write_round_trip() {
        let mut m = mutator(3);
        let loc = RootLoc::Slot { depth: 1, slot: 0 };
        assert_eq!(read_root(&m, loc), 101);
        write_root(&mut m, loc, 4242);
        assert_eq!(read_root(&m, loc), 4242);

        m.regs.set(Reg::new(3), Value::Ptr(Addr::new(9)));
        let loc = RootLoc::Reg(3);
        assert_eq!(read_root(&m, loc), 9);
        write_root(&mut m, loc, 11);
        assert_eq!(read_root(&m, loc), 11);
    }
}
