//! The work-packet scheduler for parallel collection (MMTk-style).
//!
//! A parallel collection runs as a sequence of bounded *sections*, each
//! fanning one kind of work out over `workers` threads:
//!
//! 1. **Root packets** — the root words a stack scan produced (fresh
//!    frames, cached frames, registers, alloc buffer) are read serially,
//!    split into packets, forwarded in parallel, and written back
//!    serially.
//! 2. **Store-buffer packets** — the sorted, deduplicated field
//!    locations of the sequential store buffer, split into packets.
//! 3. **Trace/copy packets** — the transitive-closure drain: packets of
//!    gray objects pulled from a shared [`PacketQueue`], each scan
//!    discovering more gray objects that are pushed back as fresh
//!    packets.
//!
//! **Packet lifecycle.** A packet is a `Vec` of up to
//! [`PACKET_OBJECTS`] work items. Sections 1 and 2 are *bounded*: the
//! packet set is fixed up front, workers just drain it. Section 3 is
//! *generative*: scanning a packet produces new packets, so it needs
//! termination detection — a worker that finds the queue empty parks on
//! the queue's condvar; when every worker is parked the queue flips to
//! `done` and all workers return ([`PacketQueue::pop`]).
//!
//! **Copy allocation.** Workers never contend on the to-space bump
//! pointer: each holds a [`WorkerCopyAlloc`] that carves
//! [`CHUNK_WORDS`]-sized chunks off a [`SharedCursor`] (one CAS per
//! chunk) and bump-allocates copies inside its current chunk. Abandoned
//! chunk tails are *slack* — dead words below the frontier, excluded
//! from live accounting via [`Space::note_slack`](tilgc_mem::Space::note_slack).
//!
//! **Object forwarding** uses a claim/publish protocol over the atomic
//! memory view ([`SharedMemView`](tilgc_mem::SharedMemView)): CAS the
//! from-space header to the busy sentinel, copy the payload, then
//! release-publish the forwarding header. Losers spin until the
//! forwarding pointer appears. The protocol lives in
//! [`Evacuator`](crate::Evacuator)'s parallel drain paths; this module
//! provides the scheduling primitives.
//!
//! **Determinism contract.** `workers = 1` never enters this module:
//! the plans fall back to the serial Cheney lane, whose every counter
//! and golden output is byte-identical to the pre-parallel collector —
//! the *oracle* the differential tests and the torture harness compare
//! parallel lanes against. A parallel collection copies the same object
//! set and charges the same simulated cycles (worker deltas are merged
//! in worker-index order), but physical addresses and telemetry event
//! order may differ.
//!
//! **Serial fallback.** Parallel collection needs to-space headroom for
//! per-worker chunk slack. Plans engage it only when the destination
//! has `from_used + workers × 2 × CHUNK_WORDS` words free
//! ([`slack_budget_words`]); tight-heap collections (and collections
//! using profiling or a tenure threshold) run on the serial lane.
//!
//! **Fault tolerance.** Each worker's packet loop runs inside
//! `catch_unwind`; a panicking worker rolls back its in-progress
//! forwarding claim ([`PendingClaim`]), returns its in-flight packet to
//! the queue ([`PacketQueue::fail`]), and retires. A watchdog on the
//! coordinator marks unresponsive workers lost
//! ([`PacketQueue::mark_lost`]) on a wall-clock deadline, and workers
//! retire themselves when a per-section simulated-cycle budget
//! ([`CycleBudget`]) is exceeded. Once losses reach the queue's
//! threshold the queue closes and the coordinator drains every
//! remaining packet on the exact serial path — the collection always
//! terminates with the serial oracle's answer (see
//! `Evacuator::par_section`). All queue locking recovers from
//! `PoisonError`, so no panic can wedge the pool.

mod alloc;
mod fault;
mod queue;

pub use alloc::{SharedCursor, WorkerCopyAlloc, CHUNK_WORDS};
pub use fault::{CycleBudget, SectionFaults, StallLatch, WorkerFaultKind, WorkerFaultSpec};
pub use queue::PacketQueue;

use tilgc_mem::{Addr, Header};

/// Maximum work items per packet. Small enough to balance load across
/// workers, large enough to amortize queue locking.
pub const PACKET_OBJECTS: usize = 64;

/// To-space headroom a parallel collection reserves beyond the
/// from-space live bound: room for every worker to hold a full chunk
/// plus a chunk of accumulated tail slack. Collections without this
/// headroom fall back to the serial lane.
pub fn slack_budget_words(workers: usize) -> usize {
    workers * 2 * CHUNK_WORDS
}

/// Splits `items` into packets of at most [`PACKET_OBJECTS`] items.
pub fn packetize<T>(items: Vec<T>) -> Vec<Vec<T>> {
    let mut packets = Vec::with_capacity(items.len().div_ceil(PACKET_OBJECTS).max(1));
    let mut it = items.into_iter();
    loop {
        let packet: Vec<T> = it.by_ref().take(PACKET_OBJECTS).collect();
        if packet.is_empty() {
            break;
        }
        packets.push(packet);
    }
    packets
}

/// Deterministically permutes packet order — the torture harness's
/// packet-reorder injection. A correct scheduler produces the same
/// reachable heap under any packet order, so this knob flushes hidden
/// ordering assumptions without changing what work is done.
pub fn reorder_packets<T>(packets: &mut [T]) {
    packets.reverse();
    // Interleave halves: [a b c d e f] -> [f e d c b a] -> [f d b a c e]
    // (a fixed shuffle is as good as a random one for order-independence
    // checks, and keeps the lane reproducible).
    let n = packets.len();
    for i in (1..n / 2).step_by(2) {
        packets.swap(i, n - 1 - i);
    }
}

/// One worker's private accounting for a parallel section, merged into
/// `GcStats` (in worker-index order) after the section joins. Keeping
/// the charges out of the shared state makes the merged totals
/// identical to the serial lane's regardless of interleaving.
#[derive(Debug, Default)]
pub struct WorkerDelta {
    /// Bytes this worker copied.
    pub copied_bytes: u64,
    /// Simulated copy cycles (`copy_per_word` × words copied).
    pub copy_cycles: u64,
    /// Words this worker Cheney-scanned (gray-object scans).
    pub scanned_words: u64,
    /// Scan cycles (`scan_per_word` × words scanned).
    pub scan_cycles: u64,
    /// Work items this worker forwarded that actually moved (roots
    /// sections charge `root_process` per relocation).
    pub relocated: u64,
    /// Large objects this worker marked (`large_object_visit` each).
    pub large_marked: u64,
    /// Gray objects discovered in a *bounded* section, to seed the
    /// trace/copy drain.
    pub gray: Vec<Addr>,
    /// Deferred telemetry: (site, bytes, from_nursery) per copy, fed to
    /// the accumulator after the join (host-side only, order-free).
    pub telem_copies: Vec<(u16, u64, bool)>,
    /// Abandoned chunk-tail words, folded into the space's slack.
    pub tail_slack: usize,
    /// Root relocations `(root_index, forwarded_word)` discovered by a
    /// roots section, written back to the mutator after the join.
    pub root_moves: Vec<(usize, u64)>,
    /// The claim currently held by this worker's forward-in-progress
    /// (between the BUSY CAS and the forwarding publish). If the worker
    /// unwinds here, the coordinator rolls the claim back by
    /// republishing the original header (losers spinning on BUSY then
    /// re-claim) and refunds the copy destination as slack.
    pub pending_claim: Option<PendingClaim>,
}

/// One in-progress claim of the claim/publish forwarding protocol, kept
/// in [`WorkerDelta`] so a caught panic can roll it back.
#[derive(Debug, Clone, Copy)]
pub struct PendingClaim {
    /// The claimed from-space object (its header holds the BUSY
    /// sentinel).
    pub addr: Addr,
    /// The header word the claim replaced, republished on rollback.
    pub original: u64,
    /// Words already allocated for the copy destination (0 until the
    /// allocation succeeds); refunded as chunk slack on rollback.
    pub dest_words: usize,
}

impl PendingClaim {
    /// The original (pre-claim) header.
    pub fn original_header(&self) -> Header {
        Header::from_raw(self.original)
    }
}

impl WorkerDelta {
    /// Folds another delta into this one (used when merging the
    /// per-worker results in worker-index order).
    pub fn merge(&mut self, other: WorkerDelta) {
        debug_assert!(
            other.pending_claim.is_none(),
            "merging a delta with an unresolved claim"
        );
        self.copied_bytes += other.copied_bytes;
        self.copy_cycles += other.copy_cycles;
        self.scanned_words += other.scanned_words;
        self.scan_cycles += other.scan_cycles;
        self.relocated += other.relocated;
        self.large_marked += other.large_marked;
        self.gray.extend(other.gray);
        self.telem_copies.extend(other.telem_copies);
        self.tail_slack += other.tail_slack;
        self.root_moves.extend(other.root_moves);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packetize_bounds_packet_size() {
        let packets = packetize((0..150).collect::<Vec<u32>>());
        assert_eq!(packets.len(), 3);
        assert!(packets.iter().all(|p| p.len() <= PACKET_OBJECTS));
        let flat: Vec<u32> = packets.into_iter().flatten().collect();
        assert_eq!(flat, (0..150).collect::<Vec<u32>>());
        assert!(packetize(Vec::<u32>::new()).is_empty());
    }

    #[test]
    fn reorder_preserves_the_packet_set() {
        let mut p: Vec<u32> = (0..7).collect();
        reorder_packets(&mut p);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<u32>>());
        assert_ne!(p, (0..7).collect::<Vec<u32>>(), "order actually changed");
    }

    #[test]
    fn delta_merge_sums_counters() {
        let mut a = WorkerDelta {
            copied_bytes: 16,
            gray: vec![Addr::new(1)],
            tail_slack: 3,
            ..Default::default()
        };
        a.merge(WorkerDelta {
            copied_bytes: 8,
            gray: vec![Addr::new(2)],
            tail_slack: 1,
            ..Default::default()
        });
        assert_eq!(a.copied_bytes, 24);
        assert_eq!(a.gray, vec![Addr::new(1), Addr::new(2)]);
        assert_eq!(a.tail_slack, 4);
    }
}
