//! Per-worker copy allocation over a shared to-space cursor.

use std::sync::atomic::{AtomicUsize, Ordering};

use tilgc_mem::Addr;

/// Words per worker-local bump chunk. Large enough that the shared
/// cursor is touched rarely, small enough that abandoned tails stay a
/// tiny fraction of to-space.
pub const CHUNK_WORDS: usize = 256;

/// The shared to-space allocation cursor for one parallel section.
///
/// Built from a [`Space`](tilgc_mem::Space)'s frontier and limit;
/// workers carve chunks off it with a single `fetch_update` each. After
/// the section joins, the plan syncs the final frontier back with
/// [`Space::advance_frontier`](tilgc_mem::Space::advance_frontier) and
/// records abandoned tails with
/// [`Space::note_slack`](tilgc_mem::Space::note_slack).
pub struct SharedCursor {
    next: AtomicUsize,
    start: usize,
    limit: usize,
}

impl SharedCursor {
    /// A cursor spanning `[frontier, limit)` of a space.
    pub fn new(frontier: Addr, limit: Addr) -> SharedCursor {
        assert!(frontier <= limit, "cursor frontier past limit");
        SharedCursor {
            next: AtomicUsize::new(frontier.raw() as usize),
            start: frontier.raw() as usize,
            limit: limit.raw() as usize,
        }
    }

    /// Atomically takes `words` contiguous words, or `None` if the
    /// region is exhausted.
    pub fn take(&self, words: usize) -> Option<Addr> {
        self.next
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (self.limit - cur >= words).then_some(cur + words)
            })
            .ok()
            .map(|prev| Addr::new(prev as u32))
    }

    /// The current frontier (exact once all workers have joined).
    pub fn frontier(&self) -> Addr {
        Addr::new(self.next.load(Ordering::Relaxed) as u32)
    }

    /// Words still available (snapshot).
    pub fn remaining(&self) -> usize {
        self.limit - self.next.load(Ordering::Relaxed)
    }

    /// Words handed out since construction (exact once workers joined).
    pub fn taken_words(&self) -> usize {
        self.next.load(Ordering::Relaxed) - self.start
    }
}

/// One worker's private bump allocator over the shared cursor.
///
/// Small objects bump inside the worker's current chunk; a chunk refill
/// is one CAS on the cursor. Oversized objects bypass the chunk and
/// take exactly their size. When a chunk can't fit the next object its
/// tail is abandoned and counted in [`finish`](WorkerCopyAlloc::finish)
/// — the caller folds the total into the space's slack so live-size
/// accounting matches the serial lane.
pub struct WorkerCopyAlloc<'c> {
    cursor: &'c SharedCursor,
    workers: usize,
    chunk_next: usize,
    chunk_end: usize,
    slack: usize,
}

impl<'c> WorkerCopyAlloc<'c> {
    /// A fresh allocator with an empty chunk (first alloc refills).
    pub fn new(cursor: &'c SharedCursor, workers: usize) -> WorkerCopyAlloc<'c> {
        assert!(workers > 0);
        WorkerCopyAlloc {
            cursor,
            workers,
            chunk_next: 0,
            chunk_end: 0,
            slack: 0,
        }
    }

    /// Allocates `words` words of copy space, or `None` when to-space
    /// is exhausted (the headroom gate makes this unreachable in
    /// practice; callers treat it as the same overflow as the serial
    /// lane's bump failure).
    pub fn alloc(&mut self, words: usize) -> Option<Addr> {
        if words > CHUNK_WORDS {
            return self.cursor.take(words);
        }
        if self.chunk_end - self.chunk_next >= words {
            let addr = self.chunk_next;
            self.chunk_next += words;
            return Some(Addr::new(addr as u32));
        }
        // Refill: abandon the tail, take a fresh chunk. Near exhaustion
        // shrink the ask so stragglers don't strand big tails — but
        // never below the object itself.
        self.slack += self.chunk_end - self.chunk_next;
        self.chunk_next = 0;
        self.chunk_end = 0;
        let want = CHUNK_WORDS
            .min(self.cursor.remaining() / (2 * self.workers))
            .max(words);
        if let Some(chunk) = self.cursor.take(want) {
            let base = chunk.raw() as usize;
            self.chunk_next = base + words;
            self.chunk_end = base + want;
            Some(chunk)
        } else {
            // Chunk ask failed; fall back to an exact take.
            self.cursor.take(words)
        }
    }

    /// Retires the allocator, returning its total abandoned-tail words
    /// (current chunk remainder included).
    pub fn finish(self) -> usize {
        self.slack + (self.chunk_end - self.chunk_next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_take_is_contiguous_and_bounded() {
        let c = SharedCursor::new(Addr::new(100), Addr::new(110));
        assert_eq!(c.take(4), Some(Addr::new(100)));
        assert_eq!(c.take(6), Some(Addr::new(104)));
        assert_eq!(c.take(1), None);
        assert_eq!(c.frontier(), Addr::new(110));
        assert_eq!(c.taken_words(), 10);
    }

    #[test]
    fn worker_alloc_bumps_within_chunk() {
        let c = SharedCursor::new(Addr::new(0x100), Addr::new(0x100 + 4 * CHUNK_WORDS as u32));
        let mut a = WorkerCopyAlloc::new(&c, 2);
        let x = a.alloc(8).unwrap();
        let y = a.alloc(8).unwrap();
        assert_eq!(y - x, 8, "second alloc bumps in the same chunk");
        assert_eq!(c.taken_words(), CHUNK_WORDS, "one chunk taken");
        assert_eq!(a.finish(), CHUNK_WORDS - 16);
    }

    #[test]
    fn oversized_objects_bypass_the_chunk() {
        let c = SharedCursor::new(Addr::new(0x100), Addr::new(0x100 + 8 * CHUNK_WORDS as u32));
        let mut a = WorkerCopyAlloc::new(&c, 1);
        a.alloc(4).unwrap();
        let big = a.alloc(CHUNK_WORDS + 1).unwrap();
        assert_eq!(big.raw() as usize, 0x100 + CHUNK_WORDS, "after the chunk");
        let small = a.alloc(4).unwrap();
        assert_eq!(small - Addr::new(0x104), 0, "chunk bump resumes");
    }

    #[test]
    fn exhaustion_returns_none_and_slack_accounts_for_every_word() {
        let total = 2 * CHUNK_WORDS + 17;
        let c = SharedCursor::new(Addr::new(64), Addr::new(64 + total as u32));
        let mut a = WorkerCopyAlloc::new(&c, 1);
        let mut live = 0usize;
        while let Some(_addr) = a.alloc(7) {
            live += 7;
        }
        let slack = a.finish();
        assert_eq!(
            live + slack,
            c.taken_words(),
            "every taken word is live or slack"
        );
        assert!(
            c.remaining() < 7,
            "only a sub-object tail may remain untaken"
        );
    }

    /// Hand-rolled property test (no proptest in-tree): racing workers'
    /// bump regions never overlap and cover exactly the taken words.
    #[test]
    fn concurrent_worker_regions_are_disjoint_and_exhaustive() {
        let mut seed = 0x9e37_79b9_u32;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            seed
        };
        for _case in 0..20 {
            let workers = 2 + (rng() % 3) as usize; // 2..=4
            let total = CHUNK_WORDS * workers + (rng() % 2000) as usize;
            let start = 8 + (rng() % 64);
            let c = SharedCursor::new(Addr::new(start), Addr::new(start + total as u32));
            let sizes: Vec<usize> = (0..workers)
                .map(|_| 1 + (rng() % (CHUNK_WORDS as u32 + 8)) as usize)
                .collect();
            let (allocs, slack): (Vec<Vec<(usize, usize)>>, usize) = std::thread::scope(|s| {
                let handles: Vec<_> = sizes
                    .iter()
                    .map(|&sz| {
                        let c = &c;
                        s.spawn(move || {
                            let mut a = WorkerCopyAlloc::new(c, workers);
                            let mut got = Vec::new();
                            while let Some(addr) = a.alloc(sz) {
                                got.push((addr.raw() as usize, sz));
                                if got.len() > total {
                                    panic!("allocator never exhausts");
                                }
                            }
                            (got, a.finish())
                        })
                    })
                    .collect();
                let mut allocs = Vec::new();
                let mut slack = 0;
                for h in handles {
                    let (got, s) = h.join().unwrap();
                    allocs.push(got);
                    slack += s;
                }
                (allocs, slack)
            });
            let mut regions: Vec<(usize, usize)> = allocs.into_iter().flatten().collect();
            regions.sort_unstable();
            let mut live = 0usize;
            for w in regions.windows(2) {
                assert!(w[0].0 + w[0].1 <= w[1].0, "regions {w:?} overlap");
            }
            for &(_, sz) in &regions {
                live += sz;
            }
            assert_eq!(
                live + slack,
                c.taken_words(),
                "allocations + abandoned tails cover exactly the taken words"
            );
        }
    }
}
