//! Worker-fault injection and the stall latch.
//!
//! The torture harness (and the unit tests) arm exactly one
//! [`WorkerFaultSpec`] per run: a deterministic `(worker, packet)`
//! coordinate at which the targeted worker misbehaves. All three fault
//! kinds fire at a *packet boundary* — after the packet is popped (and
//! recorded in the worker's in-flight slot) but before any of its items
//! are processed — so the packet carries zero partial charges and the
//! requeue/degradation paths reproduce the serial oracle's `GcStats`
//! exactly. A genuine (non-injected) mid-packet panic still preserves
//! heap correctness (forwarding is idempotent and claims are rolled
//! back), but its partial cycle charges are kept, so only wall-clock
//! and the fault counters may differ from the oracle in that case.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use super::queue::lock_recover;

/// What the injected worker does when the fault fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerFaultKind {
    /// The worker panics (inside the packet loop's `catch_unwind`): its
    /// in-flight packet is requeued and the worker retires as lost.
    Panic,
    /// The worker parks on the section's [`StallLatch`] and stops
    /// responding; the watchdog's wall-clock backstop marks it lost,
    /// requeues its packet, and releases the latch so the thread can
    /// join.
    Stall,
    /// The worker silently skips the packet — neither processing nor
    /// completing it. The orphan is discovered in the worker's
    /// in-flight slot after the section joins and is drained on the
    /// serial path (the `orphan` degradation trigger).
    Drop,
}

/// A deterministic single-shot worker fault: `worker`'s `packet`-th
/// packet pop (counted per worker, across the collection's sections)
/// triggers `kind`. Plain data so it can live in `GcConfig`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerFaultSpec {
    /// Which fault fires.
    pub kind: WorkerFaultKind,
    /// Target worker index (taken modulo the worker count).
    pub worker: usize,
    /// Target per-worker packet ordinal (0 = the worker's first pop).
    pub packet: usize,
}

/// Why a collection degraded to the serial path, for telemetry.
/// Encoded through an atomic (first writer wins) because the trigger
/// can be set from a worker thread or from the watchdog.
const TRIGGER_NONE: u8 = 0;
const TRIGGER_PANIC: u8 = 1;
const TRIGGER_WATCHDOG: u8 = 2;
const TRIGGER_BUDGET: u8 = 3;

/// Shared fault state for one parallel section: the (already
/// worker-resolved) armed spec, the one-shot fired flag, the lost
/// counter, and the degradation trigger slot.
pub struct SectionFaults {
    spec: Option<WorkerFaultSpec>,
    fired: AtomicBool,
    lost: AtomicU64,
    trigger: AtomicU8,
    /// The stall fault's parking spot.
    pub latch: StallLatch,
}

impl SectionFaults {
    /// Builds the section state; `spec` is `None` when no fault is
    /// armed (or a previous section already fired it).
    pub fn new(spec: Option<WorkerFaultSpec>) -> SectionFaults {
        SectionFaults {
            spec,
            fired: AtomicBool::new(false),
            lost: AtomicU64::new(0),
            trigger: AtomicU8::new(TRIGGER_NONE),
            latch: StallLatch::new(),
        }
    }

    /// Whether worker `w`'s `packet_idx`-th pop should misbehave.
    /// Claims the one-shot flag, so at most one call ever fires.
    pub fn should_fire(&self, w: usize, packet_idx: usize) -> Option<WorkerFaultKind> {
        let spec = self.spec?;
        if spec.worker != w || spec.packet != packet_idx {
            return None;
        }
        self.fired
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
            .then_some(spec.kind)
    }

    /// Whether the armed fault (if any) fired during this section.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Whether a stall fault is armed (forces the watchdog on).
    pub fn stall_armed(&self) -> bool {
        self.spec.is_some_and(|s| s.kind == WorkerFaultKind::Stall)
    }

    /// Records a worker loss with its degradation trigger
    /// (`"panic"`, `"watchdog"`, or `"budget"`); first trigger wins.
    pub fn note_lost(&self, trigger: &'static str) {
        self.lost.fetch_add(1, Ordering::AcqRel);
        let code = match trigger {
            "panic" => TRIGGER_PANIC,
            "watchdog" => TRIGGER_WATCHDOG,
            "budget" => TRIGGER_BUDGET,
            _ => unreachable!("unknown loss trigger {trigger}"),
        };
        let _ =
            self.trigger
                .compare_exchange(TRIGGER_NONE, code, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Workers lost during the section.
    pub fn lost(&self) -> u64 {
        self.lost.load(Ordering::Acquire)
    }

    /// The degradation trigger, if any loss was recorded.
    pub fn trigger(&self) -> Option<&'static str> {
        match self.trigger.load(Ordering::Acquire) {
            TRIGGER_PANIC => Some("panic"),
            TRIGGER_WATCHDOG => Some("watchdog"),
            TRIGGER_BUDGET => Some("budget"),
            _ => None,
        }
    }
}

/// Where a stall-injected worker parks until the watchdog (or the
/// section teardown) releases it. Poison-safe like the packet queue: a
/// panic elsewhere can never wedge the latch.
pub struct StallLatch {
    released: Mutex<bool>,
    cond: Condvar,
}

impl StallLatch {
    /// A latch that is not yet released.
    pub fn new() -> StallLatch {
        StallLatch {
            released: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Parks the calling thread until [`release`](Self::release).
    pub fn park(&self) {
        let mut released = lock_recover(&self.released);
        while !*released {
            released = self
                .cond
                .wait(released)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Parks with a timeout (used by tests). Returns whether the latch
    /// was released (vs. the wait timing out).
    pub fn park_timeout(&self, dur: Duration) -> bool {
        let mut released = lock_recover(&self.released);
        let deadline = std::time::Instant::now() + dur;
        while !*released {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            released = self
                .cond
                .wait_timeout(released, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .0;
        }
        true
    }

    /// Releases every parked (and future) waiter. Idempotent.
    pub fn release(&self) {
        let mut released = lock_recover(&self.released);
        *released = true;
        drop(released);
        self.cond.notify_all();
    }
}

impl Default for StallLatch {
    fn default() -> StallLatch {
        StallLatch::new()
    }
}

/// Per-worker section cycle telemetry bridged back to the coordinator:
/// workers publish their accumulated simulated cycles so the budget
/// check (the watchdog's simulated-cycle half) reads a live value.
pub struct CycleBudget {
    /// Per-phase simulated-cycle ceiling per worker; `u64::MAX`
    /// disables the check.
    pub budget: u64,
    spent_max: AtomicU64,
}

impl CycleBudget {
    /// A budget of `budget` simulated cycles per worker per section.
    pub fn new(budget: u64) -> CycleBudget {
        CycleBudget {
            budget,
            spent_max: AtomicU64::new(0),
        }
    }

    /// Whether `spent` cycles exceed the budget (and records the
    /// high-water mark for diagnostics).
    pub fn exceeded(&self, spent: u64) -> bool {
        self.spent_max.fetch_max(spent, Ordering::AcqRel);
        spent > self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_fires_exactly_once_at_its_coordinate() {
        let f = SectionFaults::new(Some(WorkerFaultSpec {
            kind: WorkerFaultKind::Panic,
            worker: 2,
            packet: 1,
        }));
        assert_eq!(f.should_fire(2, 0), None, "wrong packet ordinal");
        assert_eq!(f.should_fire(1, 1), None, "wrong worker");
        assert_eq!(f.should_fire(2, 1), Some(WorkerFaultKind::Panic));
        assert_eq!(f.should_fire(2, 1), None, "one-shot");
        assert!(f.fired());
    }

    #[test]
    fn unarmed_sections_never_fire() {
        let f = SectionFaults::new(None);
        assert_eq!(f.should_fire(0, 0), None);
        assert!(!f.fired());
        assert!(!f.stall_armed());
    }

    #[test]
    fn first_loss_trigger_wins() {
        let f = SectionFaults::new(None);
        f.note_lost("watchdog");
        f.note_lost("panic");
        assert_eq!(f.lost(), 2);
        assert_eq!(f.trigger(), Some("watchdog"));
    }

    #[test]
    fn latch_release_unparks() {
        let latch = StallLatch::new();
        std::thread::scope(|s| {
            s.spawn(|| latch.park());
            latch.release();
        });
        assert!(latch.park_timeout(Duration::from_millis(1)), "idempotent");
    }

    #[test]
    fn cycle_budget_tracks_exceedance() {
        let b = CycleBudget::new(100);
        assert!(!b.exceeded(100));
        assert!(b.exceeded(101));
        let unlimited = CycleBudget::new(u64::MAX);
        assert!(!unlimited.exceeded(u64::MAX - 1));
    }
}
