//! The shared packet queue with idle-worker termination detection and
//! fault-tolerant worker retirement.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Locks a mutex, recovering the guard from a poisoned lock instead of
/// propagating the panic. Every invariant the queue protects is
/// re-checked on each operation (the state is a plain work list plus
/// counters, never left half-updated across an unwind point), so a
/// poisoned lock carries no torn state — recovery is always safe here.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One worker's claimed-but-unfinished packets: the clone requeued if
/// the worker is lost, plus the claim time the watchdog ages against.
struct InFlight<T> {
    packet: T,
    since: Instant,
}

struct State<T> {
    packets: VecDeque<T>,
    idle: usize,
    /// Workers still participating (started minus lost/failed).
    live: usize,
    done: bool,
    /// Per-worker stacks of in-flight packets (clones kept so a lost
    /// worker's claimed work can be recovered).
    in_flight: Vec<Vec<InFlight<T>>>,
    /// Per-worker lost flags: a lost worker's pops return `None` and
    /// its completions are ignored.
    lost: Vec<bool>,
    /// Per-worker memo of the packets retirement requeued, so a *late*
    /// completion from a spuriously-lost worker can retract the
    /// still-queued duplicate.
    lost_requeued: Vec<Vec<T>>,
    /// Total workers lost; reaching `loss_threshold` closes the queue
    /// (remaining packets become leftovers for the serial path).
    lost_count: usize,
    loss_threshold: usize,
}

/// A blocking MPMC queue of work packets for one parallel section.
///
/// Termination is the classic idle-count protocol: a worker that finds
/// the queue empty parks on the condvar; when every *live* worker is
/// parked at once no packet can ever appear again (only workers push),
/// so the last one to park flips `done` and wakes everyone.
///
/// **Fault tolerance.** [`pop_worker`](Self::pop_worker) records a
/// clone of the popped packet in the worker's in-flight slot;
/// [`complete`](Self::complete) discharges it. A worker that panics
/// calls [`fail`](Self::fail) (requeue in-flight work, retire); the
/// watchdog retires an unresponsive worker with
/// [`mark_lost`](Self::mark_lost). Retirement shrinks the live count so
/// the idle-count termination still fires, and once losses reach the
/// queue's threshold the queue closes — whatever work remains is
/// handed to the coordinator via
/// [`take_leftovers`](Self::take_leftovers) for the serial
/// (degradation) path. All locking recovers from poison: a panicking
/// worker can never wedge the pool.
pub struct PacketQueue<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
    workers: usize,
}

impl<T: Clone> PacketQueue<T> {
    /// Creates a queue drained by `workers` poppers, closing after the
    /// first lost worker (the conservative degradation threshold: any
    /// loss hands the remaining packets to the exact serial path).
    pub fn new(workers: usize) -> PacketQueue<T> {
        PacketQueue::with_loss_threshold(workers, 1)
    }

    /// Creates a queue that tolerates `loss_threshold - 1` lost workers
    /// before closing.
    pub fn with_loss_threshold(workers: usize, loss_threshold: usize) -> PacketQueue<T> {
        assert!(workers > 0, "queue needs at least one worker");
        assert!(loss_threshold > 0, "a zero threshold would never open");
        PacketQueue {
            state: Mutex::new(State {
                packets: VecDeque::new(),
                idle: 0,
                live: workers,
                done: false,
                in_flight: (0..workers).map(|_| Vec::new()).collect(),
                lost: vec![false; workers],
                lost_requeued: (0..workers).map(|_| Vec::new()).collect(),
                lost_count: 0,
                loss_threshold,
            }),
            cond: Condvar::new(),
            workers,
        }
    }

    /// Seeds the queue before the workers start.
    pub fn seed(&self, packets: impl IntoIterator<Item = T>) {
        let mut st = lock_recover(&self.state);
        st.packets.extend(packets);
    }

    /// Pushes a freshly generated packet and wakes one parked worker.
    pub fn push(&self, packet: T) {
        let mut st = lock_recover(&self.state);
        st.packets.push_back(packet);
        drop(st);
        self.cond.notify_one();
    }

    /// Pops the next packet, blocking while the queue is empty but some
    /// worker is still active (and might generate more). Returns `None`
    /// once every live worker is idle — the section is complete.
    ///
    /// `from_back` drains LIFO instead of FIFO; the packet-reorder
    /// fault injection gives odd-numbered workers a back-draining pop
    /// to shake out ordering assumptions.
    pub fn pop(&self, from_back: bool) -> Option<T> {
        self.pop_inner(None, from_back)
    }

    /// [`pop`](Self::pop) for worker `w`, additionally recording a
    /// clone of the packet in the worker's in-flight slot so the work
    /// survives if the worker is lost before calling
    /// [`complete`](Self::complete). Returns `None` immediately if the
    /// worker has been marked lost.
    pub fn pop_worker(&self, w: usize, from_back: bool) -> Option<T> {
        self.pop_inner(Some(w), from_back)
    }

    fn pop_inner(&self, worker: Option<usize>, from_back: bool) -> Option<T> {
        let mut st = lock_recover(&self.state);
        loop {
            if st.done || worker.is_some_and(|w| st.lost[w]) {
                return None;
            }
            let packet = if from_back {
                st.packets.pop_back()
            } else {
                st.packets.pop_front()
            };
            if let Some(p) = packet {
                if let Some(w) = worker {
                    st.in_flight[w].push(InFlight {
                        packet: p.clone(),
                        since: Instant::now(),
                    });
                }
                return Some(p);
            }
            st.idle += 1;
            if st.idle >= st.live {
                st.done = true;
                drop(st);
                self.cond.notify_all();
                return None;
            }
            st = self
                .cond
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st.idle -= 1;
        }
    }

    /// Retires worker `w` after a caught panic: its in-flight packets
    /// return to the queue (newest first, so re-execution order matches
    /// a LIFO unwind) and the live count shrinks so termination still
    /// fires. Reaching the loss threshold closes the queue. Idempotent.
    pub fn fail(&self, w: usize) {
        self.retire(w);
    }

    /// The watchdog's retirement path for a worker that stopped
    /// responding: identical to [`fail`](Self::fail), but called from
    /// the coordinator. The worker's future pops return `None` and its
    /// late completions are ignored.
    pub fn mark_lost(&self, w: usize) {
        self.retire(w);
    }

    fn retire(&self, w: usize) {
        let mut st = lock_recover(&self.state);
        if st.lost[w] {
            return;
        }
        st.lost[w] = true;
        st.lost_count += 1;
        st.live -= 1;
        let requeued: Vec<T> = st.in_flight[w].drain(..).rev().map(|f| f.packet).collect();
        for p in requeued {
            st.lost_requeued[w].push(p.clone());
            st.packets.push_back(p);
        }
        if st.lost_count >= st.loss_threshold || st.idle >= st.live {
            st.done = true;
        }
        drop(st);
        self.cond.notify_all();
    }

    /// Closes the queue unconditionally: every pop returns `None` and
    /// the remaining packets become leftovers. The coordinator's
    /// degradation entry point.
    pub fn close(&self) {
        let mut st = lock_recover(&self.state);
        st.done = true;
        drop(st);
        self.cond.notify_all();
    }

    /// Whether the queue has terminated (drained, closed, or past the
    /// loss threshold).
    pub fn is_done(&self) -> bool {
        lock_recover(&self.state).done
    }

    /// Workers lost so far.
    pub fn lost_count(&self) -> usize {
        lock_recover(&self.state).lost_count
    }

    /// Live (not-lost) workers whose oldest in-flight packet is older
    /// than `deadline` — the watchdog's wall-clock staleness scan.
    pub fn stale_workers(&self, deadline: Duration) -> Vec<usize> {
        let st = lock_recover(&self.state);
        let now = Instant::now();
        (0..self.workers)
            .filter(|&w| {
                !st.lost[w]
                    && st.in_flight[w]
                        .first()
                        .is_some_and(|f| now.duration_since(f.since) >= deadline)
            })
            .collect()
    }

    /// Drains everything the section left behind — queued packets plus
    /// any orphaned in-flight entries (a worker that popped but never
    /// completed nor failed) — for the coordinator's serial drain.
    /// Call after the workers have joined.
    pub fn take_leftovers(&self) -> Vec<T> {
        let mut st = lock_recover(&self.state);
        let mut left: Vec<T> = st.packets.drain(..).collect();
        for w in 0..self.workers {
            left.extend(st.in_flight[w].drain(..).map(|f| f.packet));
        }
        left
    }

    /// Packets currently queued (snapshot; for tests and logging).
    pub fn len(&self) -> usize {
        lock_recover(&self.state).packets.len()
    }

    /// Whether the queue is currently empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Clone + PartialEq> PacketQueue<T> {
    /// Discharges worker `w`'s most recent in-flight packet after it
    /// was fully processed. If the worker was marked lost mid-packet
    /// (a spurious watchdog firing), the requeued duplicate is removed
    /// from the queue when still present, narrowing the double-work
    /// window to packets another worker already took.
    pub fn complete(&self, w: usize) {
        let mut st = lock_recover(&self.state);
        if st.lost[w] {
            // Retirement drained the slot and requeued its packets; the
            // one this late completion discharges is the newest memo
            // entry. Retract the duplicate if no one has re-taken it.
            if let Some(p) = st.lost_requeued[w].pop() {
                if let Some(pos) = st.packets.iter().position(|q| *q == p) {
                    st.packets.remove(pos);
                }
            }
            return;
        }
        assert!(
            st.in_flight[w].pop().is_some(),
            "complete({w}) without a matching pop_worker"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_worker_drains_and_terminates() {
        let q: PacketQueue<u32> = PacketQueue::new(1);
        q.seed([1, 2, 3]);
        assert_eq!(q.pop(false), Some(1));
        assert_eq!(q.pop(false), Some(2));
        assert_eq!(q.pop(false), Some(3));
        assert_eq!(q.pop(false), None, "idle count hits workers => done");
        assert_eq!(q.pop(false), None, "stays done");
    }

    #[test]
    fn back_pop_drains_lifo() {
        let q: PacketQueue<u32> = PacketQueue::new(1);
        q.seed([1, 2, 3]);
        assert_eq!(q.pop(true), Some(3));
        assert_eq!(q.pop(true), Some(2));
    }

    #[test]
    fn generative_drain_terminates_with_many_workers() {
        // Each packet of value v > 0 generates two packets of v - 1:
        // a tree of 2^v leaves, counted concurrently.
        const WORKERS: usize = 4;
        let q: PacketQueue<u32> = PacketQueue::new(WORKERS);
        q.seed([6]);
        let leaves = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let (q, leaves) = (&q, &leaves);
                s.spawn(move || {
                    while let Some(v) = q.pop_worker(w, w % 2 == 1) {
                        if v == 0 {
                            leaves.fetch_add(1, Ordering::Relaxed);
                        } else {
                            q.push(v - 1);
                            q.push(v - 1);
                        }
                        q.complete(w);
                    }
                });
            }
        });
        assert_eq!(leaves.load(Ordering::Relaxed), 64);
        assert!(q.is_empty());
        assert_eq!(q.pop(false), None, "terminated queue stays terminated");
        assert!(q.take_leftovers().is_empty(), "nothing in flight remains");
    }

    #[test]
    fn stress_many_rounds_never_hang() {
        // Repeatedly run small generative drains; any missed-wakeup bug
        // in the termination protocol shows up as a hang here.
        for round in 0..200 {
            let q: PacketQueue<u32> = PacketQueue::new(3);
            q.seed([round % 5]);
            let popped = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for w in 0..3 {
                    let (q, popped) = (&q, &popped);
                    s.spawn(move || {
                        while let Some(v) = q.pop(w == 1) {
                            popped.fetch_add(1, Ordering::Relaxed);
                            if v > 0 {
                                q.push(v - 1);
                            }
                        }
                    });
                }
            });
            assert_eq!(popped.load(Ordering::Relaxed) as u32, round % 5 + 1);
        }
    }

    #[test]
    fn failed_worker_requeues_in_flight_and_terminates() {
        // Threshold high enough that one loss does not close the queue:
        // the surviving worker must drain the requeued packet.
        let q: PacketQueue<u32> = PacketQueue::with_loss_threshold(2, 2);
        q.seed([10, 20]);
        assert_eq!(q.pop_worker(0, false), Some(10));
        q.fail(0); // worker 0 dies holding packet 10
        assert_eq!(q.pop_worker(0, false), None, "lost worker pops nothing");
        assert_eq!(q.pop_worker(1, false), Some(20));
        q.complete(1);
        assert_eq!(q.pop_worker(1, false), Some(10), "requeued packet");
        q.complete(1);
        assert_eq!(
            q.pop_worker(1, false),
            None,
            "sole live worker idle => done"
        );
        assert!(q.take_leftovers().is_empty());
    }

    #[test]
    fn loss_threshold_closes_queue_with_leftovers() {
        let q: PacketQueue<u32> = PacketQueue::new(2); // threshold 1
        q.seed([1, 2, 3]);
        assert_eq!(q.pop_worker(0, false), Some(1));
        q.mark_lost(0);
        assert!(q.is_done(), "first loss closes at the default threshold");
        assert_eq!(q.pop_worker(1, false), None);
        let mut left = q.take_leftovers();
        left.sort_unstable();
        assert_eq!(left, vec![1, 2, 3], "in-flight packet 1 was requeued");
        assert_eq!(q.lost_count(), 1);
    }

    #[test]
    fn orphaned_in_flight_surfaces_as_leftover() {
        // A worker that pops but neither completes nor fails (the
        // packet-drop injection) leaves the clone in its slot.
        let q: PacketQueue<u32> = PacketQueue::new(1);
        q.seed([7, 8]);
        assert_eq!(q.pop_worker(0, false), Some(7)); // dropped: no complete
        assert_eq!(q.pop_worker(0, false), Some(8));
        q.complete(0);
        assert_eq!(q.pop_worker(0, false), None);
        assert_eq!(q.take_leftovers(), vec![7], "orphan recovered");
    }

    #[test]
    fn late_completion_of_lost_worker_removes_duplicate() {
        let q: PacketQueue<u32> = PacketQueue::with_loss_threshold(2, 2);
        q.seed([5]);
        assert_eq!(q.pop_worker(0, false), Some(5));
        q.mark_lost(0); // spurious: worker 0 is actually still running
        assert_eq!(q.len(), 1, "packet requeued");
        q.complete(0); // worker 0 finishes after all
        assert_eq!(q.len(), 0, "duplicate removed before anyone re-ran it");
    }

    #[test]
    fn stale_worker_scan_finds_old_claims() {
        let q: PacketQueue<u32> = PacketQueue::new(2);
        q.seed([1]);
        assert_eq!(q.pop_worker(1, false), Some(1));
        assert!(q.stale_workers(Duration::from_secs(3600)).is_empty());
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(q.stale_workers(Duration::from_millis(1)), vec![1]);
        q.complete(1);
        assert!(q.stale_workers(Duration::ZERO).is_empty());
    }

    #[test]
    fn close_wakes_parked_workers() {
        let q: PacketQueue<u32> = PacketQueue::new(2);
        let popped = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let (q, popped) = (&q, &popped);
            s.spawn(move || {
                // Parks (queue empty, other worker never goes idle).
                if q.pop_worker(0, false).is_some() {
                    popped.fetch_add(1, Ordering::Relaxed);
                }
            });
            std::thread::sleep(Duration::from_millis(2));
            q.close();
        });
        assert_eq!(popped.load(Ordering::Relaxed), 0);
        assert!(q.is_done());
    }

    #[test]
    fn poisoned_lock_recovers() {
        // Poison the state mutex from a panicking thread, then verify
        // every entry point still works.
        let q: PacketQueue<u32> = PacketQueue::new(1);
        let qr = &q;
        let _ = std::thread::scope(|s| {
            s.spawn(move || {
                let _guard = qr.state.lock().unwrap();
                panic!("poison the queue");
            })
            .join()
        });
        assert!(q.state.is_poisoned(), "setup: lock actually poisoned");
        q.seed([4]);
        q.push(5);
        assert_eq!(q.pop_worker(0, false), Some(4));
        q.complete(0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(false), Some(5));
    }
}
