//! The shared packet queue with idle-worker termination detection.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    packets: VecDeque<T>,
    idle: usize,
    done: bool,
}

/// A blocking MPMC queue of work packets for one parallel section.
///
/// Termination is the classic idle-count protocol: a worker that finds
/// the queue empty parks on the condvar; when all `workers` are parked
/// at once no packet can ever appear again (only workers push), so the
/// last one to park flips `done` and wakes everyone.
pub struct PacketQueue<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
    workers: usize,
}

impl<T> PacketQueue<T> {
    /// Creates a queue drained by `workers` poppers.
    pub fn new(workers: usize) -> PacketQueue<T> {
        assert!(workers > 0, "queue needs at least one worker");
        PacketQueue {
            state: Mutex::new(State {
                packets: VecDeque::new(),
                idle: 0,
                done: false,
            }),
            cond: Condvar::new(),
            workers,
        }
    }

    /// Seeds the queue before the workers start.
    pub fn seed(&self, packets: impl IntoIterator<Item = T>) {
        let mut st = self.state.lock().unwrap();
        st.packets.extend(packets);
    }

    /// Pushes a freshly generated packet and wakes one parked worker.
    pub fn push(&self, packet: T) {
        let mut st = self.state.lock().unwrap();
        st.packets.push_back(packet);
        drop(st);
        self.cond.notify_one();
    }

    /// Pops the next packet, blocking while the queue is empty but some
    /// worker is still active (and might generate more). Returns `None`
    /// once every worker is idle — the section is complete.
    ///
    /// `from_back` drains LIFO instead of FIFO; the packet-reorder
    /// fault injection gives odd-numbered workers a back-draining pop
    /// to shake out ordering assumptions.
    pub fn pop(&self, from_back: bool) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.done {
                return None;
            }
            let packet = if from_back {
                st.packets.pop_back()
            } else {
                st.packets.pop_front()
            };
            if let Some(p) = packet {
                return Some(p);
            }
            st.idle += 1;
            if st.idle == self.workers {
                st.done = true;
                drop(st);
                self.cond.notify_all();
                return None;
            }
            st = self.cond.wait(st).unwrap();
            st.idle -= 1;
        }
    }

    /// Packets currently queued (snapshot; for tests and logging).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().packets.len()
    }

    /// Whether the queue is currently empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_worker_drains_and_terminates() {
        let q: PacketQueue<u32> = PacketQueue::new(1);
        q.seed([1, 2, 3]);
        assert_eq!(q.pop(false), Some(1));
        assert_eq!(q.pop(false), Some(2));
        assert_eq!(q.pop(false), Some(3));
        assert_eq!(q.pop(false), None, "idle count hits workers => done");
        assert_eq!(q.pop(false), None, "stays done");
    }

    #[test]
    fn back_pop_drains_lifo() {
        let q: PacketQueue<u32> = PacketQueue::new(1);
        q.seed([1, 2, 3]);
        assert_eq!(q.pop(true), Some(3));
        assert_eq!(q.pop(true), Some(2));
    }

    #[test]
    fn generative_drain_terminates_with_many_workers() {
        // Each packet of value v > 0 generates two packets of v - 1:
        // a tree of 2^v leaves, counted concurrently.
        const WORKERS: usize = 4;
        let q: PacketQueue<u32> = PacketQueue::new(WORKERS);
        q.seed([6]);
        let leaves = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let (q, leaves) = (&q, &leaves);
                s.spawn(move || {
                    while let Some(v) = q.pop(w % 2 == 1) {
                        if v == 0 {
                            leaves.fetch_add(1, Ordering::Relaxed);
                        } else {
                            q.push(v - 1);
                            q.push(v - 1);
                        }
                    }
                });
            }
        });
        assert_eq!(leaves.load(Ordering::Relaxed), 64);
        assert!(q.is_empty());
        assert_eq!(q.pop(false), None, "terminated queue stays terminated");
    }

    #[test]
    fn stress_many_rounds_never_hang() {
        // Repeatedly run small generative drains; any missed-wakeup bug
        // in the termination protocol shows up as a hang here.
        for round in 0..200 {
            let q: PacketQueue<u32> = PacketQueue::new(3);
            q.seed([round % 5]);
            let popped = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for w in 0..3 {
                    let (q, popped) = (&q, &popped);
                    s.spawn(move || {
                        while let Some(v) = q.pop(w == 1) {
                            popped.fetch_add(1, Ordering::Relaxed);
                            if v > 0 {
                                q.push(v - 1);
                            }
                        }
                    });
                }
            });
            assert_eq!(popped.load(Ordering::Relaxed) as u32, round % 5 + 1);
        }
    }
}
