//! Small helpers shared by the collectors.

use tilgc_mem::{Addr, Header, MemError, Memory, Space};
use tilgc_obs::TelemetryAcc;
use tilgc_runtime::{AllocShape, CollectReason, CollectionInspection, GcStats};

/// Wire name of a collection trigger, for telemetry events.
pub(crate) fn reason_str(reason: CollectReason) -> &'static str {
    match reason {
        CollectReason::Forced => "forced",
        CollectReason::ForcedMajor => "forced-major",
        CollectReason::AllocFailure => "alloc-failure",
    }
}

/// Builds the telemetry end-of-collection event from the same snapshots
/// the inspection record is derived from, plus the collection's timeline
/// position and the plan's cumulative histograms.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_collection_end(
    before: &GcStats,
    after: &GcStats,
    insp: &CollectionInspection,
    telem: &TelemetryAcc,
    end_cycles: u64,
    wall_ns: u64,
    workers: u64,
    worker_copied_bytes: Vec<u64>,
    chunks_owned: u64,
    side_cleared_words: u64,
) -> tilgc_obs::CollectionEnd {
    tilgc_obs::CollectionEnd {
        collection: insp.collection,
        major: insp.was_major,
        depth: insp.depth_at_gc,
        claimed_prefix: insp.claimed_prefix,
        oracle_prefix: insp.oracle_prefix,
        copied_bytes: insp.copied_bytes,
        scanned_words: insp.scanned_words,
        pretenured_scanned_words: insp.pretenured_scanned_words,
        roots_found: insp.roots_found,
        frames_scanned: insp.frames_scanned,
        frames_reused: insp.frames_reused,
        slots_scanned: after.slots_scanned - before.slots_scanned,
        barrier_entries: after.barrier_entries - before.barrier_entries,
        markers_placed: after.markers_placed - before.markers_placed,
        gc_cycles: after.gc_cycles() - before.gc_cycles(),
        end_cycles,
        live_bytes_after: insp.live_bytes_after,
        wall_ns,
        size_hist: telem.size_hist,
        depth_hist: telem.depth_hist,
        workers,
        worker_copied_bytes,
        chunks_owned,
        side_cleared_words,
    }
}

/// Builds the post-collection inspection record from the cumulative
/// stats snapshot taken at the start of the collection (`before`), the
/// stats at its end (`after`), and the scan's prefix claims
/// (`claimed_prefix`, `oracle_prefix` from the
/// [`ScanOutcome`](crate::ScanOutcome)).
pub(crate) fn build_inspection(
    before: &GcStats,
    after: &GcStats,
    was_major: bool,
    depth_at_gc: usize,
    live_accounting_complete: bool,
    scan_claim: (usize, usize),
) -> CollectionInspection {
    CollectionInspection {
        collection: after.collections,
        was_major,
        depth_at_gc: depth_at_gc as u64,
        live_bytes_after: after.last_live_bytes,
        live_accounting_complete,
        copied_bytes: after.copied_bytes - before.copied_bytes,
        scanned_words: after.scanned_words - before.scanned_words,
        pretenured_scanned_words: after.pretenured_scanned_words - before.pretenured_scanned_words,
        roots_found: after.roots_found - before.roots_found,
        frames_scanned: after.frames_scanned - before.frames_scanned,
        frames_reused: after.frames_reused - before.frames_reused,
        claimed_prefix: scan_claim.0 as u64,
        oracle_prefix: scan_claim.1 as u64,
    }
}

/// Writes a freshly allocated object of the given shape at `addr`,
/// initializing its fields from the mutator's staged operand buffer.
///
/// # Panics
///
/// Panics if the shape is invalid (over-long record); shapes are validated
/// by the `Vm` entry points before they reach a collector.
pub(crate) fn materialize(mem: &mut Memory, addr: Addr, shape: AllocShape, buf: &[u64]) {
    match shape {
        AllocShape::Record { len, mask, .. } => {
            let header = Header::record(len, mask).expect("record shape validated by Vm");
            let words = mem.words_at_mut(addr, header.size_words());
            words[0] = header.raw();
            words[1..].copy_from_slice(&buf[..len]);
        }
        AllocShape::PtrArray { len, .. } => {
            let header = Header::ptr_array(len).expect("array shape validated by Vm");
            let init = buf.first().copied().unwrap_or(0);
            let words = mem.words_at_mut(addr, header.size_words());
            words[0] = header.raw();
            words[1..].fill(init);
        }
        AllocShape::RawArray { len_bytes, .. } => {
            let header = Header::raw_array(len_bytes).expect("array shape validated by Vm");
            let words = mem.words_at_mut(addr, header.size_words());
            words[0] = header.raw();
            words[1..].fill(0);
        }
    }
    // The allocation site lives in the side bytemap, not the header.
    mem.set_site(addr, shape.site());
}

/// Allocates and materializes an object in a bump space.
pub(crate) fn alloc_in_space(
    mem: &mut Memory,
    space: &mut Space,
    shape: AllocShape,
    buf: &[u64],
) -> Result<Addr, MemError> {
    let addr = space.alloc(shape.size_words())?;
    materialize(mem, addr, shape, buf);
    Ok(addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_mem::{object, SiteId};

    #[test]
    fn materialize_each_shape() {
        let mut mem = Memory::with_capacity_words(128);
        let mut s = Space::new(mem.reserve(64).unwrap());

        let rec = alloc_in_space(
            &mut mem,
            &mut s,
            AllocShape::Record {
                site: SiteId::new(1),
                len: 2,
                mask: 0b10,
            },
            &[11, 640],
        )
        .unwrap();
        assert_eq!(object::field(&mem, rec, 0), 11);
        assert!(object::header(&mem, rec).field_is_pointer(1));

        let arr = alloc_in_space(
            &mut mem,
            &mut s,
            AllocShape::PtrArray {
                site: SiteId::new(2),
                len: 3,
            },
            &[u64::from(rec.raw())],
        )
        .unwrap();
        for i in 0..3 {
            assert_eq!(object::ptr_field(&mem, arr, i), rec);
        }

        let raw = alloc_in_space(
            &mut mem,
            &mut s,
            AllocShape::RawArray {
                site: SiteId::new(3),
                len_bytes: 10,
            },
            &[],
        )
        .unwrap();
        assert_eq!(object::header(&mem, raw).payload_words(), 2);
        assert_eq!(object::field(&mem, raw, 0), 0);
    }
}
