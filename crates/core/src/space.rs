//! The space/policy layer: each kind of heap region as a reusable
//! component with its own allocation discipline, membership test, and
//! per-object treatment during a trace.
//!
//! A [`Plan`](crate::Plan) composes these policies and assigns each a
//! [`CopySemantics`]; the shared tracing driver
//! ([`Evacuator`](crate::Evacuator)) then applies the assigned treatment
//! when the transitive closure reaches an object:
//!
//! * [`CopySpace`] — a pair of bump-allocated semispaces with an active
//!   half. One `CopySpace` is the whole heap of the semispace plan
//!   (semantics [`CopySemantics::Evacuate`]), another is the nursery of
//!   the generational plans (semantics [`CopySemantics::Promote`]: all
//!   survivors leave for an older space, §2.1), and a third is the
//!   tenured generation (evacuated between its halves at major
//!   collections).
//! * [`LargeObjectSpace`] — mark-sweep; objects
//!   never move ([`CopySemantics::MarkSweep`]).
//! * [`PretenuredRegion`] — the §6 policy: objects from designated sites
//!   are born tenured and the freshly allocated region is *scanned in
//!   place* at the next collection instead of being copied
//!   ([`CopySemantics::ScanInPlace`]), unless the §7.2 analysis cleared
//!   their site of scanning entirely.

use tilgc_mem::{Addr, SiteId, SiteRouteTable, Space};

use crate::config::PretenurePolicy;
use crate::los::LargeObjectSpace;

/// What the tracing driver does with a live object found in a space —
/// the per-space treatment a [`Plan`](crate::Plan) assigns when it
/// configures a collection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CopySemantics {
    /// Copy survivors into the other half of the same [`CopySpace`]
    /// (the Cheney semispace discipline).
    Evacuate,
    /// Copy survivors into an *older* space — the generational nursery's
    /// immediate promotion (§2.1), optionally detoured through an aging
    /// survivor half under a §7.2 tenure threshold.
    Promote,
    /// Leave the object where it is and forward its pointer fields in
    /// place — freshly pretenured regions (§6: "copying objects is
    /// slower than only scanning them") and young large pointer arrays.
    ScanInPlace,
    /// Leave the object where it is; liveness is a mark bit and
    /// reclamation a sweep (the large-object space).
    MarkSweep,
}

/// Common face of the space policies: a label for diagnostics, the copy
/// semantics the owning plan assigned, and a membership test.
pub trait SpacePolicy {
    /// Short diagnostic label ("nursery", "tenured", "los", ...).
    fn label(&self) -> &'static str;

    /// The treatment the owning plan assigned to this space's objects.
    fn semantics(&self) -> CopySemantics;

    /// Whether `addr` currently belongs to this space.
    fn contains(&self, addr: Addr) -> bool;

    /// Words currently occupied by this space's objects.
    fn used_words(&self) -> usize;
}

/// A pair of bump-allocated semispaces with an active half — the moving
/// spaces of every plan (the semispace heap, the nursery system, the
/// tenured generation).
///
/// Allocation always bumps through the active half; a collection copies
/// survivors out (into the inactive half, or into another space entirely
/// under [`CopySemantics::Promote`]) and [`flip`](CopySpace::flip)s.
#[derive(Debug)]
pub struct CopySpace {
    label: &'static str,
    semantics: CopySemantics,
    spaces: [Space; 2],
    active: usize,
}

impl CopySpace {
    /// Builds a copy space from two (equal-capacity) reservations.
    pub fn new(label: &'static str, semantics: CopySemantics, a: Space, b: Space) -> CopySpace {
        CopySpace {
            label,
            semantics,
            spaces: [a, b],
            active: 0,
        }
    }

    /// The half allocation currently bumps through.
    pub fn active(&self) -> &Space {
        &self.spaces[self.active]
    }

    /// Mutable access to the active half.
    pub fn active_mut(&mut self) -> &mut Space {
        &mut self.spaces[self.active]
    }

    /// The half survivors are copied into.
    pub fn inactive(&self) -> &Space {
        &self.spaces[1 - self.active]
    }

    /// Mutable access to the inactive half.
    pub fn inactive_mut(&mut self) -> &mut Space {
        &mut self.spaces[1 - self.active]
    }

    /// Makes the inactive half active (after survivors landed there).
    pub fn flip(&mut self) {
        self.active = 1 - self.active;
    }

    /// Applies the same logical capacity limit to both halves (heap
    /// resizing toward a target liveness ratio applies symmetrically).
    pub fn set_limit_words(&mut self, words: usize) {
        self.spaces[0].set_limit_words(words);
        self.spaces[1].set_limit_words(words);
    }
}

impl SpacePolicy for CopySpace {
    fn label(&self) -> &'static str {
        self.label
    }

    fn semantics(&self) -> CopySemantics {
        self.semantics
    }

    fn contains(&self, addr: Addr) -> bool {
        self.spaces[0].contains(addr) || self.spaces[1].contains(addr)
    }

    fn used_words(&self) -> usize {
        self.spaces[0].used_words() + self.spaces[1].used_words()
    }
}

impl SpacePolicy for LargeObjectSpace {
    fn label(&self) -> &'static str {
        "los"
    }

    fn semantics(&self) -> CopySemantics {
        CopySemantics::MarkSweep
    }

    fn contains(&self, addr: Addr) -> bool {
        LargeObjectSpace::contains(self, addr)
    }

    fn used_words(&self) -> usize {
        LargeObjectSpace::used_words(self)
    }
}

/// The §6 pretenured region: the site policy deciding which allocations
/// are born tenured, plus the objects allocated since the last collection
/// that still owe their one in-place scan.
///
/// The region is not a separate reservation — pretenured objects live in
/// the tenured [`CopySpace`] — but it is a distinct *policy*: its objects
/// are [`CopySemantics::ScanInPlace`] until the next collection has seen
/// them, after which they are ordinary tenured objects.
#[derive(Debug, Default)]
pub struct PretenuredRegion {
    policy: PretenurePolicy,
    /// Branch-free mirror of the policy's site set, consulted on the
    /// allocation fast path (the `BTreeSet` stays authoritative for
    /// enumeration and the no-scan subset).
    route: SiteRouteTable,
    pending: Vec<Addr>,
    /// Words allocated per pretenured site over the run — the pressure
    /// signal the governor's demotion rung ranks sites by.
    alloc_words: std::collections::BTreeMap<SiteId, u64>,
}

impl PretenuredRegion {
    /// Builds the region around a derived (or hand-written) site policy.
    pub fn new(policy: PretenurePolicy) -> PretenuredRegion {
        let mut route = SiteRouteTable::new();
        for site in policy.sites() {
            route.set(site);
        }
        PretenuredRegion {
            policy,
            route,
            pending: Vec::new(),
            alloc_words: std::collections::BTreeMap::new(),
        }
    }

    /// The site policy in force.
    pub fn policy(&self) -> &PretenurePolicy {
        &self.policy
    }

    /// Number of sites currently routed tenured-at-birth (the route
    /// table's popcount — tracks adaptive flips, unlike the static
    /// policy's site list).
    pub fn routed_sites(&self) -> usize {
        self.route.len()
    }

    /// Whether allocations from `site` are born tenured. This is the
    /// alloc fast path's test: one word index and a bit probe,
    /// branch-free regardless of how many sites are routed.
    #[inline]
    pub fn should_pretenure(&self, site: SiteId) -> bool {
        self.route.route(site)
    }

    /// Routes future allocations from `site` to the tenured-at-birth
    /// path (an online promotion). Idempotent.
    pub fn promote_site(&mut self, site: SiteId) {
        self.policy.add_site(site);
        self.route.set(site);
    }

    /// Reroutes future allocations from `site` back to the nursery (an
    /// online demotion). Objects the site already tenured stay where
    /// they are. Returns whether the site was routed.
    pub fn demote_site(&mut self, site: SiteId) -> bool {
        self.route.clear(site);
        self.policy.remove_site(site)
    }

    /// Whether pending scans use the cheaper §7.2 site-grouped kernel.
    pub fn grouped(&self) -> bool {
        self.policy.group_by_site
    }

    /// Records a freshly pretenured allocation of `words` words, queuing
    /// it for its one in-place scan — unless it is pointer-free or the
    /// §7.2 analysis cleared its site ("some areas may require no
    /// scanning because they contain no pointers").
    pub fn note_alloc(&mut self, addr: Addr, site: SiteId, words: usize, pointer_free: bool) {
        *self.alloc_words.entry(site).or_insert(0) += words as u64;
        if !pointer_free && !self.policy.is_no_scan(site) {
            self.pending.push(addr);
        }
    }

    /// Demotes the highest-pressure pretenured site — the one that has
    /// allocated the most tenured words (ties break to the lowest site
    /// id) — back to nursery allocation, and returns it. Objects the
    /// site already tenured stay where they are (any still owing their
    /// in-place scan remain pending); only *future* allocations are
    /// rerouted. Returns `None` when no site is left to demote.
    pub fn demote_hottest(&mut self) -> Option<SiteId> {
        let hottest = self.policy.sites().max_by_key(|s| {
            (
                self.alloc_words.get(s).copied().unwrap_or(0),
                std::cmp::Reverse(*s),
            )
        })?;
        self.policy.remove_site(hottest);
        self.route.clear(hottest);
        Some(hottest)
    }

    /// Queues an object for the next in-place scan unconditionally (the
    /// oversized-at-birth routing, which has no site policy behind it).
    pub fn defer_scan(&mut self, addr: Addr) {
        self.pending.push(addr);
    }

    /// Takes the pending-scan list for a minor collection's in-place
    /// pass.
    pub fn take_pending(&mut self) -> Vec<Addr> {
        std::mem::take(&mut self.pending)
    }

    /// Drops the pending list — a major collection traces pretenured
    /// objects like any other tenured object.
    pub fn clear_pending(&mut self) {
        self.pending.clear();
    }
}

impl SpacePolicy for PretenuredRegion {
    fn label(&self) -> &'static str {
        "pretenured"
    }

    fn semantics(&self) -> CopySemantics {
        CopySemantics::ScanInPlace
    }

    /// Membership in the *policy* sense: the object still owes its
    /// in-place scan. (Physically the object lives in the tenured
    /// `CopySpace`.)
    fn contains(&self, addr: Addr) -> bool {
        self.pending.contains(&addr)
    }

    fn used_words(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_mem::Memory;

    #[test]
    fn copy_space_flips_and_limits_both_halves() {
        let mut mem = Memory::with_capacity_words(512);
        let a = Space::new(mem.reserve(128).unwrap());
        let b = Space::new(mem.reserve(128).unwrap());
        let mut cs = CopySpace::new("heap", CopySemantics::Evacuate, a, b);
        assert_eq!(cs.semantics(), CopySemantics::Evacuate);
        let in_active = cs.active_mut().alloc(4).unwrap();
        assert!(SpacePolicy::contains(&cs, in_active));
        assert_eq!(cs.used_words(), 4);
        cs.flip();
        assert_eq!(cs.inactive().used_words(), 4);
        assert_eq!(cs.active().used_words(), 0);
        cs.set_limit_words(64);
        assert_eq!(cs.active().capacity_words(), 64);
        assert_eq!(cs.inactive().capacity_words(), 64);
    }

    #[test]
    fn pretenured_region_queues_only_scannable_objects() {
        let mut policy = PretenurePolicy::new();
        let hot = SiteId::new(1);
        let cleared = SiteId::new(2);
        policy.add_site(hot);
        policy.add_site(cleared);
        policy.add_no_scan_site(cleared);
        let mut region = PretenuredRegion::new(policy);
        assert!(region.should_pretenure(hot));
        assert_eq!(region.semantics(), CopySemantics::ScanInPlace);

        region.note_alloc(Addr::new(10), hot, 4, false);
        region.note_alloc(Addr::new(20), hot, 4, true); // pointer-free
        region.note_alloc(Addr::new(30), cleared, 4, false); // §7.2 no-scan
        assert!(SpacePolicy::contains(&region, Addr::new(10)));
        assert!(!SpacePolicy::contains(&region, Addr::new(20)));
        assert_eq!(region.take_pending(), vec![Addr::new(10)]);
        assert!(region.take_pending().is_empty());
    }

    #[test]
    fn demotion_picks_the_hottest_site_and_drains_the_policy() {
        let cool = SiteId::new(1);
        let hot = SiteId::new(2);
        let idle = SiteId::new(3);
        let mut policy: PretenurePolicy = [cool, hot, idle].into_iter().collect();
        policy.add_no_scan_site(hot);
        let mut region = PretenuredRegion::new(policy);
        region.note_alloc(Addr::new(10), cool, 8, false);
        region.note_alloc(Addr::new(20), hot, 64, false);
        region.note_alloc(Addr::new(30), hot, 64, false);

        assert_eq!(region.demote_hottest(), Some(hot));
        assert!(!region.should_pretenure(hot));
        assert!(
            !region.policy().is_no_scan(hot),
            "no-scan entry dropped too"
        );
        // Pending scans of already-tenured objects survive the demotion.
        assert!(SpacePolicy::contains(&region, Addr::new(10)));
        assert_eq!(region.demote_hottest(), Some(cool));
        // Sites with equal (zero) pressure demote lowest-id first.
        assert_eq!(region.demote_hottest(), Some(idle));
        assert_eq!(region.demote_hottest(), None);
    }

    #[test]
    fn route_table_mirrors_policy_through_flips() {
        let seeded = SiteId::new(4);
        let policy: PretenurePolicy = [seeded].into_iter().collect();
        let mut region = PretenuredRegion::new(policy);
        assert!(region.should_pretenure(seeded));

        let promoted = SiteId::new(9);
        region.promote_site(promoted);
        assert!(region.should_pretenure(promoted));
        assert!(region.policy().should_pretenure(promoted));

        assert!(region.demote_site(promoted));
        assert!(!region.should_pretenure(promoted));
        assert!(!region.demote_site(promoted), "already demoted");

        // demote_hottest keeps the fast-path mirror in sync too.
        assert_eq!(region.demote_hottest(), Some(seeded));
        assert!(!region.should_pretenure(seeded));
    }
}
