//! The plan layer: a [`Plan`] composes space policies, maps allocation
//! sites to spaces, and assigns each space its
//! [`CopySemantics`](crate::CopySemantics); the shared tracing driver
//! ([`Evacuator`](crate::Evacuator)) executes whatever the plan
//! configured.
//!
//! Three plans reproduce the paper's collector configurations:
//!
//! * [`SemispacePlan`](crate::SemispacePlan) — one
//!   [`CopySpace`](crate::CopySpace), evacuated wholesale (§2.1
//!   baseline);
//! * [`GenerationalPlan`](crate::GenerationalPlan) — nursery
//!   `CopySpace` (promote), tenured `CopySpace` (evacuate at majors),
//!   mark-sweep [`LargeObjectSpace`](crate::LargeObjectSpace), and
//!   optionally a [`PretenuredRegion`](crate::PretenuredRegion)
//!   (scan-in-place);
//! * [`PretenuringPlan`] — the generational plan with the §6
//!   pretenured-region policy as a first-class component.
//!
//! `tilgc-runtime`'s [`Collector`] trait is the mutator-facing seam; the
//! [`PlanCollector`] adapter implements it by pure delegation, so a plan
//! never re-implements mutator plumbing. (An adapter struct rather than a
//! blanket impl: `Collector` is a foreign trait, so a blanket
//! `impl<P: Plan> Collector for P` would violate coherence.)

use tilgc_mem::{Addr, GcError, Memory};
use tilgc_runtime::{
    AllocShape, CollectReason, CollectionInspection, Collector, GcStats, HeapProfile, MutatorState,
};

use crate::config::{GcConfig, PretenurePolicy};
use crate::generational::GenerationalPlan;

/// A GC plan: the composition of space policies behind one collector
/// configuration, and the site→space mapping that routes allocations.
///
/// Every method is required — in particular [`finish`](Plan::finish) and
/// [`take_profile`](Plan::take_profile), which were once defaulted at the
/// `Collector` level and could silently drop a plan's final profile
/// flush.
pub trait Plan {
    /// A short human-readable name ("semispace", "generational", ...).
    fn name(&self) -> &'static str;

    /// Read access to the simulated memory.
    fn memory(&self) -> &Memory;

    /// Write access to the simulated memory (mutator field stores).
    fn memory_mut(&mut self) -> &mut Memory;

    /// Allocates an object, routing the site to a space per the plan's
    /// policy and collecting first if necessary.
    ///
    /// # Errors
    ///
    /// Returns a [`GcError`] when the heap-pressure escalation ladder
    /// cannot make the request fit within the fixed heap budget.
    fn alloc(&mut self, m: &mut MutatorState, shape: AllocShape) -> Result<Addr, GcError>;

    /// Runs a collection now.
    fn collect(&mut self, m: &mut MutatorState, reason: CollectReason);

    /// Cumulative collection statistics.
    fn gc_stats(&self) -> &GcStats;

    /// End-of-run hook: flushes profiling data (a final death sweep for
    /// everything still live).
    fn finish(&mut self, m: &mut MutatorState);

    /// Extracts the heap profile gathered during the run, if profiling
    /// was enabled.
    fn take_profile(&mut self) -> Option<HeapProfile>;

    /// The inspection record of the most recent collection, or `None`
    /// before the first collection. Required (not defaulted) for the
    /// same reason as [`finish`](Plan::finish): the differential torture
    /// harness cross-checks these records, and a silently-`None` plan
    /// would opt out of verification.
    fn last_inspection(&self) -> Option<&CollectionInspection>;

    /// Wraps the plan in the [`PlanCollector`] adapter, yielding the
    /// boxed [`Collector`] the runtime consumes.
    fn into_collector(self) -> Box<dyn Collector>
    where
        Self: Sized + 'static,
    {
        Box::new(PlanCollector::new(self))
    }
}

/// Adapts a [`Plan`] to `tilgc-runtime`'s [`Collector`] trait by pure
/// delegation — the runtime-facing seam is thin by construction, so all
/// collector behaviour (including the end-of-run profile flush) lives in
/// the plan layer.
pub struct PlanCollector<P: Plan> {
    plan: P,
}

impl<P: Plan> PlanCollector<P> {
    /// Wraps `plan`.
    pub fn new(plan: P) -> PlanCollector<P> {
        PlanCollector { plan }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &P {
        &self.plan
    }

    /// Mutable access to the wrapped plan.
    pub fn plan_mut(&mut self) -> &mut P {
        &mut self.plan
    }

    /// Unwraps the plan.
    pub fn into_plan(self) -> P {
        self.plan
    }
}

impl<P: Plan> Collector for PlanCollector<P> {
    fn name(&self) -> &'static str {
        self.plan.name()
    }

    fn memory(&self) -> &Memory {
        self.plan.memory()
    }

    fn memory_mut(&mut self) -> &mut Memory {
        self.plan.memory_mut()
    }

    fn alloc(&mut self, m: &mut MutatorState, shape: AllocShape) -> Result<Addr, GcError> {
        self.plan.alloc(m, shape)
    }

    fn collect(&mut self, m: &mut MutatorState, reason: CollectReason) {
        self.plan.collect(m, reason)
    }

    fn gc_stats(&self) -> &GcStats {
        self.plan.gc_stats()
    }

    fn finish(&mut self, m: &mut MutatorState) {
        self.plan.finish(m)
    }

    fn take_profile(&mut self) -> Option<HeapProfile> {
        self.plan.take_profile()
    }

    fn last_inspection(&self) -> Option<&CollectionInspection> {
        self.plan.last_inspection()
    }
}

/// The §6 configuration: the generational plan with the
/// [`PretenuredRegion`](crate::PretenuredRegion) policy composed in, so
/// designated allocation sites map to the tenured space at birth and the
/// freshly pretenured region is scanned in place at the next collection.
///
/// Behaviour is exactly the generational plan's for sites outside the
/// policy; without a [`PretenurePolicy`] in the configuration the plan
/// degenerates to [`GenerationalPlan`](crate::GenerationalPlan) (the
/// paper's `gen+markers` column) — byte-for-byte.
pub struct PretenuringPlan {
    inner: GenerationalPlan,
}

impl PretenuringPlan {
    /// Creates the pretenuring plan. The pretenured-region policy comes
    /// from `config.pretenure` (typically derived from a profiling run).
    pub fn new(config: &GcConfig) -> PretenuringPlan {
        PretenuringPlan {
            inner: GenerationalPlan::new(config),
        }
    }

    /// The site policy in force, if one was configured.
    pub fn pretenure_policy(&self) -> Option<&PretenurePolicy> {
        self.inner.pretenure_policy()
    }
}

impl Plan for PretenuringPlan {
    fn name(&self) -> &'static str {
        "generational+pretenure"
    }

    fn memory(&self) -> &Memory {
        self.inner.memory()
    }

    fn memory_mut(&mut self) -> &mut Memory {
        self.inner.memory_mut()
    }

    fn alloc(&mut self, m: &mut MutatorState, shape: AllocShape) -> Result<Addr, GcError> {
        self.inner.alloc(m, shape)
    }

    fn collect(&mut self, m: &mut MutatorState, reason: CollectReason) {
        self.inner.collect(m, reason)
    }

    fn gc_stats(&self) -> &GcStats {
        self.inner.gc_stats()
    }

    fn finish(&mut self, m: &mut MutatorState) {
        self.inner.finish(m)
    }

    fn take_profile(&mut self) -> Option<HeapProfile> {
        self.inner.take_profile()
    }

    fn last_inspection(&self) -> Option<&CollectionInspection> {
        self.inner.last_inspection()
    }
}
