//! Online adaptive pretenuring (§6 closed-loop extension).
//!
//! The paper derives pretenuring decisions *offline*: a profiling run
//! records per-site survival, and sites whose old-generation survival is
//! ≥ 80 % are pretenured in a second run. That static policy is blind to
//! phase changes — a site that allocates long-lived data during start-up
//! and short-lived data afterwards keeps its stale placement forever.
//!
//! This module closes the telemetry→policy loop online. It consumes the
//! same per-site windows the telemetry accumulator already maintains
//! (allocations and survivors per site per collection) and keeps one
//! fixed-point EWMA of survival per site. Sites cross into the
//! pretenured set when their smoothed survival rises above a *promote*
//! band, and drop back to the nursery path when it falls below a lower
//! *demote* band; the gap between the bands plus a per-site cooldown
//! provides hysteresis so a site oscillating around one threshold flips
//! at most once per cooldown window.
//!
//! Everything is integer arithmetic on deterministic inputs: the same
//! telemetry stream always yields the same promote/demote sequence, on
//! one worker or many (worker deltas merge in worker-index order before
//! the estimator ever sees them).
//!
//! Survival evidence is asymmetric, mirroring where the signal lives:
//!
//! * **Promotion** evidence comes from minor collections: a
//!   nursery-allocated site's window says how many of its objects were
//!   allocated and how many survived the nursery. High smoothed
//!   survival ⇒ the copy into tenured space is wasted motion ⇒ promote.
//! * **Demotion** evidence comes from major collections: pretenured
//!   sites bypass the nursery, so their minor windows show allocations
//!   with zero survivors — which is *placement working*, not death.
//!   Only a major collection's census of the tenured generation says
//!   whether those objects actually lived; the estimator accumulates a
//!   pretenured site's allocations between majors and samples survival
//!   from the major's copied-object count.

use std::collections::BTreeMap;

use tilgc_mem::SiteId;
use tilgc_obs::SiteWindow;

use crate::PretenurePolicy;

/// Tuning knobs of the online estimator. The defaults are deliberately
/// conservative: promotion needs sustained ≥ 80 % survival (the paper's
/// offline threshold), demotion needs survival to collapse below 40 %,
/// and no site flips twice within four collections.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Smoothed survival (per-mille) at or above which a nursery site is
    /// promoted to tenured-at-birth placement.
    pub promote_permille: u64,
    /// Smoothed survival (per-mille) at or below which a pretenured site
    /// is demoted back to the nursery path.
    pub demote_permille: u64,
    /// Minimum number of collections between two flips of the same
    /// site. Together with the band gap this bounds flip rate: an
    /// oscillating site changes placement at most once per window.
    pub cooldown: u64,
    /// Windows with fewer allocations than this carry no signal and are
    /// ignored (they would let a single surviving object look like
    /// 100 % survival).
    pub min_allocs: u64,
    /// EWMA smoothing shift: each sample moves the estimate by
    /// `(sample - ewma) >> ewma_shift`. 2 ⇒ new data carries 1/4 weight.
    pub ewma_shift: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            promote_permille: 800,
            demote_permille: 400,
            cooldown: 4,
            min_allocs: 8,
            ewma_shift: 2,
        }
    }
}

/// Per-site estimator state.
#[derive(Clone, Copy, Debug, Default)]
struct SiteState {
    /// Fixed-point EWMA of survival, in per-mille (0..=1000).
    ewma_permille: i64,
    /// Whether any sample has seeded the EWMA yet (the first sample is
    /// adopted verbatim instead of decaying from zero).
    seeded: bool,
    /// Collection number of the site's last placement flip, for the
    /// cooldown. `None` until the site first flips; seed-policy sites
    /// start flippable.
    last_flip: Option<u64>,
    /// Allocations accumulated since the last major collection, for
    /// pretenured sites (their survival is sampled at majors only).
    major_allocs: u64,
}

/// The placement changes one [`AdaptivePretenure::observe`] call
/// decided, in deterministic (site-id) order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveOutcome {
    /// Sites to move onto the tenured-at-birth path, with the smoothed
    /// survival (per-mille) that justified each.
    pub promotions: Vec<(SiteId, u64)>,
    /// Sites to move back to the nursery path, with their smoothed
    /// survival.
    pub demotions: Vec<(SiteId, u64)>,
}

impl AdaptiveOutcome {
    /// Whether this outcome changes any placement.
    pub fn is_empty(&self) -> bool {
        self.promotions.is_empty() && self.demotions.is_empty()
    }
}

/// The online survival estimator and flip decider.
///
/// Owns its view of which sites are currently pretenured (seeded from
/// the static policy, if any, at construction) so decisions depend only
/// on the telemetry stream — the caller applies the returned
/// [`AdaptiveOutcome`] to the real region/policy and keeps both views in
/// lockstep via [`note_forced_demotion`](Self::note_forced_demotion).
///
/// # Example
///
/// ```
/// use tilgc_core::{AdaptiveConfig, AdaptivePretenure};
/// use tilgc_mem::SiteId;
/// use tilgc_obs::SiteWindow;
///
/// let mut a = AdaptivePretenure::new(AdaptiveConfig::default(), None);
/// let win = |survived| SiteWindow {
///     site: 7,
///     allocs: 100,
///     alloc_bytes: 800,
///     copied_objects: survived,
///     copied_bytes: survived * 8,
///     survived,
/// };
/// // Sustained ~100% survival promotes site 7 after the EWMA warms up.
/// let mut promoted = false;
/// for gc in 0..4 {
///     promoted |= !a.observe(gc, false, &[win(100)]).promotions.is_empty();
/// }
/// assert!(promoted);
/// assert!(a.is_pretenured(SiteId::new(7)));
/// ```
#[derive(Clone, Debug)]
pub struct AdaptivePretenure {
    config: AdaptiveConfig,
    sites: BTreeMap<SiteId, SiteState>,
    /// The estimator's view of the currently pretenured set.
    pretenured: std::collections::BTreeSet<SiteId>,
}

impl AdaptivePretenure {
    /// Creates an estimator, seeding the pretenured view from `seed`
    /// (the static, profile-derived policy) when present.
    pub fn new(config: AdaptiveConfig, seed: Option<&PretenurePolicy>) -> AdaptivePretenure {
        let pretenured = match seed {
            Some(p) => p.sites().collect(),
            None => Default::default(),
        };
        AdaptivePretenure {
            config,
            sites: BTreeMap::new(),
            pretenured,
        }
    }

    /// The estimator's current view: is `site` on the tenured-at-birth
    /// path?
    pub fn is_pretenured(&self, site: SiteId) -> bool {
        self.pretenured.contains(&site)
    }

    /// The smoothed survival estimate for `site`, in per-mille, or
    /// `None` if the site has produced no usable sample yet.
    pub fn survival_permille(&self, site: SiteId) -> Option<u64> {
        let s = self.sites.get(&site)?;
        s.seeded.then_some(s.ewma_permille.clamp(0, 1000) as u64)
    }

    /// Records a demotion performed outside the estimator (the pressure
    /// governor's demotion rung), keeping the pretenured view in sync
    /// and starting the site's cooldown so it is not re-promoted
    /// immediately.
    pub fn note_forced_demotion(&mut self, site: SiteId, collection: u64) {
        self.pretenured.remove(&site);
        let s = self.sites.entry(site).or_default();
        s.last_flip = Some(collection);
        // The governor demoted for *space*, not lifetime; bias the
        // estimate below the promote band so re-promotion needs fresh
        // sustained evidence.
        if s.ewma_permille >= self.config.promote_permille as i64 {
            s.ewma_permille = self.config.demote_permille as i64;
        }
        s.major_allocs = 0;
    }

    /// Feeds one collection's per-site windows into the estimator and
    /// returns the placement flips it decides. `collection` is the
    /// collection number (for cooldown bookkeeping), `major` whether
    /// this was a major (tenured-generation) collection. Windows must
    /// arrive in site order (the accumulator's iteration order).
    pub fn observe(
        &mut self,
        collection: u64,
        major: bool,
        windows: &[SiteWindow],
    ) -> AdaptiveOutcome {
        let mut out = AdaptiveOutcome::default();
        for w in windows {
            let site = SiteId::new(w.site);
            if site == SiteId::UNKNOWN {
                // Runtime-internal allocations have no stable program
                // point; never flip them.
                continue;
            }
            if self.pretenured.contains(&site) {
                // Minor or major, the window's allocations feed the
                // between-majors volume; the survival sample is taken
                // below, at majors only.
                self.sites.entry(site).or_default().major_allocs += w.allocs;
            } else {
                self.observe_nursery(site, w, collection, &mut out);
            }
        }
        if major {
            // Sample *every* pretenured site, not just those with a
            // window this collection: a site whose objects all died has
            // no survivors to produce a window at all — precisely the
            // strongest demotion evidence. Absent window ⇒ zero census.
            let sites: Vec<SiteId> = self.pretenured.iter().copied().collect();
            for site in sites {
                let live = windows
                    .iter()
                    .find(|w| w.site == site.get())
                    .map(|w| w.copied_objects.saturating_sub(w.survived))
                    .unwrap_or(0);
                self.sample_pretenured_major(site, live, collection, &mut out);
            }
        }
        out
    }

    /// Nursery-side update: the window's allocs/survived ratio is a
    /// direct nursery-survival sample.
    fn observe_nursery(
        &mut self,
        site: SiteId,
        w: &SiteWindow,
        collection: u64,
        out: &mut AdaptiveOutcome,
    ) {
        if w.allocs < self.config.min_allocs {
            return;
        }
        let sample = (w.survived.min(w.allocs) * 1000 / w.allocs) as i64;
        let s = self.sites.entry(site).or_default();
        update_ewma(s, sample, self.config.ewma_shift);
        let cooled = cooled_down(s, collection, self.config.cooldown);
        if s.ewma_permille >= self.config.promote_permille as i64 && cooled {
            s.last_flip = Some(collection);
            s.major_allocs = 0;
            self.pretenured.insert(site);
            out.promotions
                .push((site, s.ewma_permille.clamp(0, 1000) as u64));
        }
    }

    /// Pretenured-side update, run at majors only: the site's objects
    /// bypass the nursery (their minor windows are structurally
    /// survivor-free), so the only survival evidence is the major's
    /// tenured census — `live` objects of this site were found alive
    /// (copied, or scanned in place and counted) against `major_allocs`
    /// allocated since the last sample.
    fn sample_pretenured_major(
        &mut self,
        site: SiteId,
        live: u64,
        collection: u64,
        out: &mut AdaptiveOutcome,
    ) {
        let s = self.sites.entry(site).or_default();
        let allocs = s.major_allocs;
        if allocs < self.config.min_allocs {
            return;
        }
        let sample = (live.min(allocs) * 1000 / allocs) as i64;
        s.major_allocs = 0;
        update_ewma(s, sample, self.config.ewma_shift);
        let cooled = cooled_down(s, collection, self.config.cooldown);
        if s.ewma_permille <= self.config.demote_permille as i64 && cooled {
            s.last_flip = Some(collection);
            self.pretenured.remove(&site);
            out.demotions
                .push((site, s.ewma_permille.clamp(0, 1000) as u64));
        }
    }
}

/// EWMA update: adopt the first sample, then decay toward new samples
/// with weight `2^-shift`.
fn update_ewma(s: &mut SiteState, sample: i64, shift: u32) {
    if s.seeded {
        s.ewma_permille += (sample - s.ewma_permille) >> shift;
    } else {
        s.ewma_permille = sample;
        s.seeded = true;
    }
}

/// Whether the site's cooldown has elapsed by `collection`.
fn cooled_down(s: &SiteState, collection: u64, cooldown: u64) -> bool {
    match s.last_flip {
        Some(last) => collection.saturating_sub(last) >= cooldown,
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn win(site: u16, allocs: u64, survived: u64) -> SiteWindow {
        SiteWindow {
            site,
            allocs,
            alloc_bytes: allocs * 8,
            copied_objects: survived,
            copied_bytes: survived * 8,
            survived,
        }
    }

    /// A major-collection window for a pretenured site: `allocs` fresh
    /// allocations this window, `tenured_live` objects found live in the
    /// tenured census, no nursery survivors.
    fn major_win(site: u16, allocs: u64, tenured_live: u64) -> SiteWindow {
        SiteWindow {
            site,
            allocs,
            alloc_bytes: allocs * 8,
            copied_objects: tenured_live,
            copied_bytes: tenured_live * 8,
            survived: 0,
        }
    }

    #[test]
    fn sustained_survival_promotes_once() {
        let mut a = AdaptivePretenure::new(AdaptiveConfig::default(), None);
        let mut promotions = 0;
        for gc in 0..10 {
            let out = a.observe(gc, false, &[win(3, 100, 100)]);
            promotions += out.promotions.len();
        }
        assert_eq!(promotions, 1, "exactly one promote for a steady site");
        assert!(a.is_pretenured(SiteId::new(3)));
    }

    #[test]
    fn low_survival_never_promotes() {
        let mut a = AdaptivePretenure::new(AdaptiveConfig::default(), None);
        for gc in 0..50 {
            let out = a.observe(gc, false, &[win(3, 100, 10)]);
            assert!(out.is_empty());
        }
        assert!(!a.is_pretenured(SiteId::new(3)));
    }

    #[test]
    fn small_windows_carry_no_signal() {
        let mut a = AdaptivePretenure::new(AdaptiveConfig::default(), None);
        // 4 allocs < min_allocs: 100% survival of a tiny window must
        // not promote.
        for gc in 0..50 {
            let out = a.observe(gc, false, &[win(3, 4, 4)]);
            assert!(out.is_empty());
        }
        assert_eq!(a.survival_permille(SiteId::new(3)), None);
    }

    #[test]
    fn seeded_site_demotes_when_tenured_survival_collapses() {
        let mut seed = PretenurePolicy::new();
        seed.add_site(SiteId::new(5));
        let mut a = AdaptivePretenure::new(AdaptiveConfig::default(), Some(&seed));
        assert!(a.is_pretenured(SiteId::new(5)));
        // Minors: allocations accumulate, zero nursery survivors —
        // structurally uninformative, must not demote.
        for gc in 0..3 {
            let out = a.observe(gc, false, &[win(5, 100, 0)]);
            assert!(out.is_empty(), "minors must not demote pretenured sites");
        }
        // Majors with a dead tenured census drive the EWMA down.
        let mut demotions = 0;
        for gc in 3..12 {
            let out = a.observe(gc, true, &[major_win(5, 100, 0)]);
            demotions += out.demotions.len();
        }
        assert_eq!(demotions, 1);
        assert!(!a.is_pretenured(SiteId::new(5)));
    }

    #[test]
    fn unknown_site_is_never_flipped() {
        let mut a = AdaptivePretenure::new(AdaptiveConfig::default(), None);
        for gc in 0..10 {
            let out = a.observe(gc, false, &[win(0, 1000, 1000)]);
            assert!(out.is_empty());
        }
        assert!(!a.is_pretenured(SiteId::UNKNOWN));
    }

    /// Hysteresis pin: a site oscillating between 100% and 0% survival
    /// every window flips at most once per cooldown window.
    #[test]
    fn oscillating_site_flips_at_most_once_per_cooldown() {
        let config = AdaptiveConfig::default();
        let mut a = AdaptivePretenure::new(config, None);
        let mut flips: Vec<u64> = Vec::new();
        for gc in 0..200u64 {
            let alive = gc % 2 == 0;
            let w = if a.is_pretenured(SiteId::new(9)) {
                major_win(9, 100, if alive { 100 } else { 0 })
            } else {
                win(9, 100, if alive { 100 } else { 0 })
            };
            // Alternate majors/minors so both flip directions get
            // sampling opportunities.
            let out = a.observe(gc, gc % 2 == 1, &[w]);
            for _ in &out.promotions {
                flips.push(gc);
            }
            for _ in &out.demotions {
                flips.push(gc);
            }
        }
        for pair in flips.windows(2) {
            assert!(
                pair[1] - pair[0] >= config.cooldown,
                "flips at {} and {} violate the cooldown of {}",
                pair[0],
                pair[1],
                config.cooldown
            );
        }
    }

    #[test]
    fn forced_demotion_syncs_view_and_starts_cooldown() {
        let mut seed = PretenurePolicy::new();
        seed.add_site(SiteId::new(2));
        let mut a = AdaptivePretenure::new(AdaptiveConfig::default(), Some(&seed));
        a.note_forced_demotion(SiteId::new(2), 10);
        assert!(!a.is_pretenured(SiteId::new(2)));
        // Perfect survival immediately after: no flip until cooldown.
        let out = a.observe(11, false, &[win(2, 100, 100)]);
        assert!(out.promotions.is_empty(), "cooldown gates re-promotion");
        let mut promoted = false;
        for gc in 12..20 {
            promoted |= !a
                .observe(gc, false, &[win(2, 100, 100)])
                .promotions
                .is_empty();
        }
        assert!(promoted, "site re-promotes once cooled down and re-proven");
    }

    #[test]
    fn same_stream_same_decisions() {
        let run = || {
            let mut a = AdaptivePretenure::new(AdaptiveConfig::default(), None);
            let mut log = Vec::new();
            for gc in 0..64u64 {
                let s = (gc * 37) % 101;
                let out = a.observe(
                    gc,
                    gc % 5 == 0,
                    &[win(1, 100, s), win(2, 50, 50 - (s % 50)), win(3, 2, 2)],
                );
                log.push(out);
            }
            log
        };
        assert_eq!(run(), run());
    }
}
