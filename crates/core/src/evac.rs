//! The shared tracing driver: a work-queue transitive closure over the
//! object graph, used by every [`Plan`](crate::Plan).
//!
//! An [`Evacuator`] is one collection's driver state. The plan configures
//! it with the *from* ranges being vacated, the *to* space receiving
//! survivors, and (optionally) an aging survivor space and the mark-sweep
//! large-object space — i.e. the plan's per-space
//! [`CopySemantics`](crate::CopySemantics) assignment. The driver's gray
//! set has two representations, matching the two families of semantics:
//!
//! * **Cheney scan cursors** for the moving spaces (`to` and the survivor
//!   space): a freshly copied object *is* its own queue entry, scanned
//!   when the cursor reaches it (the classic two-finger scan);
//! * an explicit [`ObjectQueue`] for objects traced **without moving** —
//!   marked large objects, and anything a plan feeds through
//!   [`scan_in_place`](Evacuator::scan_in_place) recursively discovers.
//!
//! [`drain`](Evacuator::drain) interleaves the two until nothing gray
//! remains. Root feeding is shared too:
//! [`forward_roots`](Evacuator::forward_roots) relocates every root
//! location a stack scan produced and charges the paper's per-root costs,
//! identically for every plan.

use tilgc_mem::{object, Addr, Header, Memory, ObjectKind, Space, SpaceRange, MAX_RECORD_FIELDS};
use tilgc_obs::TelemetryAcc;
use tilgc_runtime::{CostModel, GcStats, HeapProfile, MutatorState};

use crate::los::LargeObjectSpace;
use crate::roots::{read_root, write_root, RootLoc};

/// The explicit half of the driver's gray set: objects that will be
/// traced in place (large objects, pretenured regions) rather than
/// discovered by a Cheney scan cursor.
#[derive(Debug, Default)]
pub struct ObjectQueue {
    pending: Vec<Addr>,
}

impl ObjectQueue {
    /// Enqueues a gray object for an in-place field scan.
    pub fn push(&mut self, addr: Addr) {
        self.pending.push(addr);
    }

    /// Takes the next gray object, LIFO.
    pub fn pop(&mut self) -> Option<Addr> {
        self.pending.pop()
    }

    /// Whether any gray objects remain queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// In debug builds, vacated spaces are filled with this pattern so that a
/// stale pointer dereference fails loudly instead of reading garbage.
pub const POISON: u64 = 0xdead_dead_dead_dead;

/// One collection's copying state.
pub struct Evacuator<'a> {
    mem: &'a mut Memory,
    from: &'a [SpaceRange],
    /// Bounding hull of all `from` ranges: one range check rejects (or,
    /// when the hull is gap-free, accepts) most addresses without the
    /// per-range linear scan.
    from_hull: SpaceRange,
    /// Whether the `from` ranges tile `from_hull` without gaps, making the
    /// hull check exact on its own.
    from_exact: bool,
    to: &'a mut Space,
    nursery: Option<SpaceRange>,
    los: Option<&'a mut LargeObjectSpace>,
    profile: Option<&'a mut HeapProfile>,
    stats: &'a mut GcStats,
    /// Telemetry accumulator lent by the plan while a recorder is
    /// installed: per-site copy/survival deltas and the object-size
    /// histogram. Host-side only — never charged simulated cycles.
    telem: Option<&'a mut TelemetryAcc>,
    cost: CostModel,
    scan: Addr,
    /// Optional aging destination (§7.2 tenure-threshold variant):
    /// from-space objects younger than `tenure_age` are copied here
    /// instead of into `to`.
    survivor: Option<&'a mut Space>,
    survivor_scan: Addr,
    tenure_age: u8,
    queue: ObjectQueue,
    /// Old-generation objects observed (during this collection) to hold
    /// a reference into the survivor space. With a tenure threshold,
    /// survivors move again at the next minor collection, so these
    /// references form a remembered set the collector must rescan.
    young_owner_refs: Vec<Addr>,
    /// Old-generation *field locations* (from store-buffer entries) whose
    /// relocated target stayed in the survivor space.
    young_field_locs: Vec<Addr>,
}

impl<'a> Evacuator<'a> {
    /// Creates an evacuator copying live objects out of `from` into `to`.
    ///
    /// `nursery` identifies which of the `from` ranges is the allocation
    /// area, so the profiler can distinguish first promotions (the "% old"
    /// statistic) from later copies. `los`, when given, receives
    /// mark/scan treatment instead of copying.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mem: &'a mut Memory,
        from: &'a [SpaceRange],
        to: &'a mut Space,
        nursery: Option<SpaceRange>,
        los: Option<&'a mut LargeObjectSpace>,
        profile: Option<&'a mut HeapProfile>,
        stats: &'a mut GcStats,
        cost: CostModel,
    ) -> Evacuator<'a> {
        let scan = to.frontier();
        let from_hull = match from.first() {
            Some(&first) => from.iter().fold(first, |hull, r| SpaceRange {
                start: hull.start.min(r.start),
                end: hull.end.max(r.end),
            }),
            None => SpaceRange {
                start: Addr::NULL,
                end: Addr::NULL,
            },
        };
        // Reservations never overlap, so covering the hull word-for-word
        // means the ranges tile it contiguously.
        let covered: usize = from.iter().map(|r| r.end - r.start).sum();
        let from_exact = covered == from_hull.end - from_hull.start;
        Evacuator {
            mem,
            from,
            from_hull,
            from_exact,
            to,
            nursery,
            los,
            profile,
            stats,
            telem: None,
            cost,
            scan,
            survivor: None,
            survivor_scan: Addr::NULL,
            tenure_age: 0,
            queue: ObjectQueue::default(),
            young_owner_refs: Vec::new(),
            young_field_locs: Vec::new(),
        }
    }

    /// Routes from-space objects whose post-copy age is below
    /// `tenure_age` into `survivor` instead of `to` — the §7.2
    /// tenure-threshold discipline ("counter bits within each object
    /// record the number of minor collections the object has survived").
    pub fn set_survivor(&mut self, survivor: &'a mut Space, tenure_age: u8) {
        self.survivor_scan = survivor.frontier();
        self.survivor = Some(survivor);
        self.tenure_age = tenure_age;
    }

    /// Lends the plan's telemetry accumulator to this collection so
    /// copies and in-place scans feed the per-site counters and size
    /// histogram.
    pub fn set_telemetry(&mut self, telem: &'a mut TelemetryAcc) {
        self.telem = Some(telem);
    }

    /// Total simulated GC cycles charged so far, read through the stats
    /// borrow this evacuator holds — lets a plan mark phase boundaries
    /// while the collection is in flight.
    pub fn current_gc_cycles(&self) -> u64 {
        self.stats.gc_cycles()
    }

    /// Whether `addr` lies in a range being vacated.
    ///
    /// The common cases — one from-range (minor collections), or several
    /// contiguous ones — are decided by a single hull comparison; only a
    /// gappy multi-range hull falls back to the per-range scan. Debug
    /// builds re-check every answer against the per-range truth, so a
    /// space layout that breaks the hull's tiling assumption fails loudly
    /// instead of silently over-approximating membership.
    #[inline]
    pub fn in_from_space(&self, addr: Addr) -> bool {
        let fast = self.from_hull.contains(addr)
            && (self.from_exact || self.from.iter().any(|r| r.contains(addr)));
        debug_assert_eq!(
            fast,
            self.from.iter().any(|r| r.contains(addr)),
            "bounding-hull membership diverged from per-range truth for {addr:?} \
             (hull {:?}, exact {})",
            self.from_hull,
            self.from_exact,
        );
        fast
    }

    /// The pre-batching membership test: a linear scan over every
    /// from-range per queried word. Kept for A/B comparison against the
    /// hull fast path.
    #[cfg(any(test, feature = "kernel-ref"))]
    #[inline]
    pub fn in_from_space_reference(&self, addr: Addr) -> bool {
        self.from.iter().any(|r| r.contains(addr))
    }

    /// Whether `addr` lies in the survivor (aging) space.
    #[inline]
    fn in_survivor(&self, addr: Addr) -> bool {
        self.survivor.as_ref().is_some_and(|s| s.contains(addr))
    }

    /// Old-generation objects found referencing survivor-space objects —
    /// the §7.2 remembered set the next minor collection must rescan.
    pub fn take_young_owner_refs(&mut self) -> Vec<Addr> {
        std::mem::take(&mut self.young_owner_refs)
    }

    /// Old-generation field locations whose targets stayed young.
    pub fn take_young_field_locs(&mut self) -> Vec<Addr> {
        std::mem::take(&mut self.young_field_locs)
    }

    /// Forwards a raw word (no-op for words that do not point into
    /// from-space — which is exactly why forwarding must only ever be
    /// applied to words *known* to be pointers).
    #[inline]
    pub fn forward_word(&mut self, word: u64) -> u64 {
        u64::from(self.forward(Addr::new(word as u32)).raw())
    }

    /// Forwards a pointer, copying the target on first contact.
    ///
    /// # Panics
    ///
    /// Panics if to-space overflows — the heap budget is exhausted.
    pub fn forward(&mut self, addr: Addr) -> Addr {
        if addr.is_null() {
            return addr;
        }
        if self.in_from_space(addr) {
            let h = object::header(self.mem, addr);
            if let Some(to) = h.forward_addr() {
                return to;
            }
            let words = h.size_words();
            let new_age = h.age().saturating_add(1);
            let dest = match self.survivor.as_deref_mut() {
                Some(survivor) if new_age < self.tenure_age && survivor.fits(words) => survivor,
                _ => &mut *self.to,
            };
            let new = dest
                .alloc(words)
                .unwrap_or_else(|_| panic!("to-space overflow: heap budget exhausted"));
            self.mem.copy_words(addr, new, words);
            // Survivors age by one collection; the dirty bit does not
            // survive a copy (the barrier that set it is drained in the
            // same collection).
            let new_h = h.with_age(new_age).with_dirty(false);
            object::set_header(self.mem, new, new_h);
            object::set_header(self.mem, addr, Header::forward(new));
            let bytes = h.size_bytes();
            self.stats.copied_bytes += bytes as u64;
            self.stats.copy_cycles += self.cost.copy_per_word * words as u64;
            if self.profile.is_some() || self.telem.is_some() {
                let from_nursery = self.nursery.is_some_and(|n| n.contains(addr));
                if let Some(p) = self.profile.as_deref_mut() {
                    p.on_copy(addr, new, bytes, from_nursery);
                }
                if let Some(t) = self.telem.as_deref_mut() {
                    t.note_copy(h.site().get(), bytes as u64, from_nursery);
                }
            }
            new
        } else {
            if let Some(los) = self.los.as_deref_mut() {
                if los.contains(addr) && los.mark(addr) {
                    self.stats.copy_cycles += self.cost.large_object_visit;
                    self.queue.push(addr);
                }
            }
            addr
        }
    }

    /// Forwards every root location, writing relocated values back, and
    /// charges the paper's per-root costs (`root_check` for every root
    /// examined, `root_process` for every root that moved). Returns the
    /// number of relocated roots.
    ///
    /// This is the root-feeding step every plan shares: the roots come
    /// from [`scan_stack`](crate::roots::scan_stack) (plus the cached
    /// frames the plan chose to expand), and whether forwarding moves a
    /// root depends only on the from-ranges this driver was configured
    /// with.
    pub fn forward_roots(&mut self, m: &mut MutatorState, roots: &[RootLoc]) -> u64 {
        let mut relocated: u64 = 0;
        for &loc in roots {
            let word = read_root(m, loc);
            let fwd = self.forward_word(word);
            if fwd != word {
                write_root(m, loc, fwd);
                relocated += 1;
            }
        }
        self.stats.roots_found += roots.len() as u64;
        self.stats.stack_cycles +=
            self.cost.root_check * roots.len() as u64 + self.cost.root_process * relocated;
        relocated
    }

    /// Runs the transitive closure to completion: the Cheney cursors
    /// (to-space, then the survivor space) scan copied objects where they
    /// landed, the [`ObjectQueue`] yields the objects traced in place,
    /// and the loop ends when all three are dry.
    pub fn drain(&mut self) {
        loop {
            if self.scan < self.to.frontier() {
                let addr = self.scan;
                let h = object::header(self.mem, addr);
                debug_assert!(!h.is_forward(), "forwarding header in to-space");
                self.scan = addr + h.size_words();
                self.stats.scanned_words += h.size_words() as u64;
                self.stats.copy_cycles += self.cost.scan_per_word * h.size_words() as u64;
                self.scan_fields(addr, h);
            } else if self
                .survivor
                .as_deref()
                .is_some_and(|s| self.survivor_scan < s.frontier())
            {
                let addr = self.survivor_scan;
                let h = object::header(self.mem, addr);
                debug_assert!(!h.is_forward(), "forwarding header in survivor space");
                self.survivor_scan = addr + h.size_words();
                self.stats.scanned_words += h.size_words() as u64;
                self.stats.copy_cycles += self.cost.scan_per_word * h.size_words() as u64;
                self.scan_fields(addr, h);
            } else if let Some(obj) = self.queue.pop() {
                let h = object::header(self.mem, obj);
                self.stats.scanned_words += h.size_words() as u64;
                self.stats.copy_cycles += self.cost.scan_per_word * h.size_words() as u64;
                self.scan_fields(obj, h);
            } else {
                break;
            }
        }
    }

    /// Forwards the pointer stored at memory location `loc` (a sequential
    /// store buffer entry), writing the relocated value back. If the
    /// location is in the old generation and its target stayed in the
    /// survivor space, the location joins the young-refs remembered set.
    pub fn forward_word_at(&mut self, loc: Addr) {
        let word = self.mem.word(loc);
        let fwd = self.forward_word(word);
        if fwd != word {
            self.mem.set_word(loc, fwd);
        }
        if !self.in_from_space(loc)
            && !self.in_survivor(loc)
            && self.in_survivor(Addr::new(fwd as u32))
        {
            self.young_field_locs.push(loc);
        }
    }

    /// Processes one object-marking barrier entry: clears the dirty bit
    /// and scans the object's fields in place. If the object was already
    /// evacuated (its copy is scanned by the Cheney drain, with a clean
    /// dirty bit), nothing is needed.
    pub fn clear_dirty_and_scan(&mut self, obj: Addr) {
        let h = object::header(self.mem, obj);
        if h.is_forward() {
            return;
        }
        if h.is_dirty() {
            object::set_header(self.mem, obj, h.with_dirty(false));
        }
        self.stats.copy_cycles += self.cost.region_scan_per_word * h.size_words() as u64;
        self.scan_fields(obj, h);
    }

    /// Scans an object *in place*, forwarding its pointer fields without
    /// copying the object itself. Used for freshly pretenured regions,
    /// dirty (write-barrier-remembered) objects, and young large arrays.
    ///
    /// `specialized` selects the cheaper per-word cost of the §7.2
    /// site-grouped scan (no per-object tag decoding).
    pub fn scan_in_place(&mut self, addr: Addr, specialized: bool) {
        let h = object::header(self.mem, addr);
        debug_assert!(!h.is_forward(), "in-place scan of forwarded object");
        let per_word = if specialized {
            self.cost.region_scan_per_word
        } else {
            self.cost.scan_per_word
        };
        self.stats.copy_cycles += per_word * h.size_words() as u64;
        self.stats.pretenured_scanned_words += h.size_words() as u64;
        if let Some(t) = self.telem.as_deref_mut() {
            t.note_inplace_scan(h.size_bytes() as u64);
        }
        self.scan_fields(addr, h);
    }

    /// Forwards a batch of store-buffer field locations.
    ///
    /// The batch is sorted and deduplicated first — the paper notes (§4)
    /// that "the simple sequential store list records a mutated site
    /// repeatedly", so a hot field reached the buffer once per store.
    /// Filtering duplicates up front means each distinct location pays the
    /// read-forward-write cycle once. The simulated cost of examining the
    /// buffer is charged per *recorded* entry by the caller, exactly as
    /// before, so `GcStats` is unchanged.
    pub fn forward_field_locs(&mut self, locs: &mut Vec<Addr>) {
        if locs.len() >= RADIX_SORT_MIN {
            radix_sort_addrs(locs);
        } else {
            locs.sort_unstable();
        }
        locs.dedup();
        for &loc in locs.iter() {
            self.forward_word_at(loc);
        }
    }

    /// The pre-batching store-buffer filter: one forward per recorded
    /// entry, duplicates and all. Kept for A/B comparison.
    #[cfg(any(test, feature = "kernel-ref"))]
    pub fn forward_field_locs_reference(&mut self, locs: &[Addr]) {
        for &loc in locs {
            self.forward_word_at(loc);
        }
    }

    /// Scans an object *in place* through the pre-batching field loop.
    /// Kept for A/B comparison against [`scan_in_place`](Self::scan_in_place).
    #[cfg(any(test, feature = "kernel-ref"))]
    pub fn scan_in_place_reference(&mut self, addr: Addr, specialized: bool) {
        let h = object::header(self.mem, addr);
        debug_assert!(!h.is_forward(), "in-place scan of forwarded object");
        let per_word = if specialized {
            self.cost.region_scan_per_word
        } else {
            self.cost.scan_per_word
        };
        self.stats.copy_cycles += per_word * h.size_words() as u64;
        self.stats.pretenured_scanned_words += h.size_words() as u64;
        self.scan_fields_reference(addr, h);
    }

    /// Forwards every pointer field of the object at `addr`, dispatching
    /// to a batched kernel per object kind. All three paths visit the same
    /// fields in the same ascending order as the reference loop and feed
    /// the profiler identically.
    fn scan_fields(&mut self, addr: Addr, h: Header) {
        match h.kind() {
            ObjectKind::RawArray => {}
            ObjectKind::Record => self.scan_record(addr, h),
            ObjectKind::PtrArray => self.scan_ptr_array(addr, h),
        }
    }

    /// Batched record scan: the payload is snapshotted with one bounds
    /// check, pointer fields are found by iterating the set bits of the
    /// header's pointer mask, and the (rarely) updated words are written
    /// back as one slice.
    ///
    /// Snapshotting is sound because [`forward`](Self::forward) only ever
    /// writes to fresh to-space/survivor allocations and to the *headers*
    /// of from-space objects — never into the payload of the object being
    /// scanned (objects are disjoint, and scanned objects are never in
    /// from-space).
    fn scan_record(&mut self, addr: Addr, h: Header) {
        let mut mask = h.ptr_mask();
        if mask == 0 {
            // No pointer fields: nothing to forward, no edges to profile,
            // and `holds_young` stays false — exactly what the reference
            // loop concludes after decoding every field.
            return;
        }
        let len = h.len();
        let base = object::field_addr(addr, 0);
        let mut buf = [0u64; MAX_RECORD_FIELDS];
        let buf = &mut buf[..len];
        buf.copy_from_slice(self.mem.words_at(base, len));

        let owner_is_old = !self.in_from_space(addr) && !self.in_survivor(addr);
        let mut holds_young = false;
        let mut changed = false;
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let child = Addr::new(buf[i] as u32);
            if child.is_null() {
                continue;
            }
            let new_child = self.forward(child);
            if new_child != child {
                buf[i] = u64::from(new_child.raw());
                changed = true;
            }
            holds_young |= self.in_survivor(new_child);
            if let Some(p) = self.profile.as_deref_mut() {
                let child_site = object::header(self.mem, new_child).site();
                p.on_edge(h.site(), child_site);
            }
        }
        if changed {
            self.mem.words_at_mut(base, len).copy_from_slice(buf);
        }
        if owner_is_old && holds_young {
            self.young_owner_refs.push(addr);
        }
    }

    /// Batched pointer-array scan: elements are processed in fixed-size
    /// chunks, each snapshotted and written back as a slice (every element
    /// of a pointer array is a pointer — no mask to consult).
    fn scan_ptr_array(&mut self, addr: Addr, h: Header) {
        const CHUNK: usize = 64;
        let len = h.len();
        let owner_is_old = !self.in_from_space(addr) && !self.in_survivor(addr);
        let mut holds_young = false;
        let mut buf = [0u64; CHUNK];
        let mut start = 0;
        while start < len {
            let n = CHUNK.min(len - start);
            let base = object::field_addr(addr, start);
            let buf = &mut buf[..n];
            buf.copy_from_slice(self.mem.words_at(base, n));
            let mut changed = false;
            for slot in buf.iter_mut() {
                let child = Addr::new(*slot as u32);
                if child.is_null() {
                    continue;
                }
                let new_child = self.forward(child);
                if new_child != child {
                    *slot = u64::from(new_child.raw());
                    changed = true;
                }
                holds_young |= self.in_survivor(new_child);
                if let Some(p) = self.profile.as_deref_mut() {
                    let child_site = object::header(self.mem, new_child).site();
                    p.on_edge(h.site(), child_site);
                }
            }
            if changed {
                self.mem.words_at_mut(base, n).copy_from_slice(buf);
            }
            start += n;
        }
        if owner_is_old && holds_young {
            self.young_owner_refs.push(addr);
        }
    }

    /// The pre-batching scan loop: header-decoded pointer test and one
    /// bounds-checked read/write per field. Kept for A/B comparison.
    #[cfg(any(test, feature = "kernel-ref"))]
    fn scan_fields_reference(&mut self, addr: Addr, h: Header) {
        if h.kind() == ObjectKind::RawArray {
            return;
        }
        let owner_is_old = !self.in_from_space(addr) && !self.in_survivor(addr);
        let mut holds_young = false;
        for i in 0..h.len() {
            if !h.field_is_pointer(i) {
                continue;
            }
            let child = object::ptr_field(self.mem, addr, i);
            if child.is_null() {
                continue;
            }
            let new_child = self.forward(child);
            if new_child != child {
                object::set_field(self.mem, addr, i, u64::from(new_child.raw()));
            }
            holds_young |= self.in_survivor(new_child);
            if let Some(p) = self.profile.as_deref_mut() {
                let child_site = object::header(self.mem, new_child).site();
                p.on_edge(h.site(), child_site);
            }
        }
        if owner_is_old && holds_young {
            self.young_owner_refs.push(addr);
        }
    }

    /// Where the to-space scan pointer currently stands (the to-space
    /// frontier once [`drain`](Evacuator::drain) returns).
    pub fn scan_cursor(&self) -> Addr {
        self.scan
    }
}

/// Buffers at least this long are radix-sorted in
/// [`Evacuator::forward_field_locs`]; shorter ones use the standard
/// comparison sort (lower constant factors at small sizes).
const RADIX_SORT_MIN: usize = 2048;

/// Sorts an address batch with an LSB radix sort: O(n) in the 32-bit
/// key width, against the comparison sort's O(n log n). Store buffers
/// are the one place the collector sorts hundreds of thousands of keys
/// (the paper's Peg records 2.9 million updates), where the linear
/// passes win decisively. A preliminary XOR sweep finds the byte
/// positions on which every key agrees — store-buffer addresses
/// cluster in one region, so typically only the low one or two bytes
/// discriminate — and only the discriminating positions get a
/// counting pass.
fn radix_sort_addrs(locs: &mut Vec<Addr>) {
    let n = locs.len();
    if n < 2 {
        return;
    }
    let firstkey = locs[0].raw();
    let mut diff = 0u32;
    for &a in locs.iter() {
        diff |= a.raw() ^ firstkey;
    }
    if diff == 0 {
        return; // all keys equal
    }
    let mut buf = std::mem::take(locs);
    let mut scratch = vec![Addr::NULL; n];
    for p in 0..4 {
        let shift = 8 * p;
        if (diff >> shift) & 0xff == 0 {
            continue; // every key shares this byte
        }
        let mut counts = [0usize; 256];
        for &a in buf.iter() {
            counts[((a.raw() >> shift) & 0xff) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut sum = 0;
        for (o, &count) in offsets.iter_mut().zip(counts.iter()) {
            *o = sum;
            sum += count;
        }
        for &a in buf.iter() {
            let b = ((a.raw() >> shift) & 0xff) as usize;
            scratch[offsets[b]] = a;
            offsets[b] += 1;
        }
        std::mem::swap(&mut buf, &mut scratch);
    }
    *locs = buf;
}

/// Reports every unforwarded (dead) object in `[start, upto)` to the
/// profiler — the death sweep each plan runs over a vacated range before
/// poisoning and resetting it. A no-op without a profiler.
pub(crate) fn sweep_profile_deaths(
    mem: &Memory,
    profile: Option<&mut HeapProfile>,
    start: Addr,
    upto: Addr,
) {
    if let Some(p) = profile {
        for entry in object::walk(mem, start, upto) {
            if entry.forwarded.is_none() {
                p.on_death(entry.addr);
            }
        }
    }
}

/// Poisons a vacated range in debug builds so stale reads fail loudly.
pub fn poison_range(mem: &mut Memory, range: SpaceRange, upto: Addr) {
    if cfg!(debug_assertions) {
        let end = upto.min(range.end);
        if end > range.start {
            mem.fill(range.start, end - range.start, POISON);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_mem::SiteId;

    #[test]
    fn radix_sort_matches_comparison_sort() {
        // Fixed multiplicative-hash stream: duplicate-heavy, spans all
        // four key bytes, and hits the shared-byte skip on none of them.
        let mut v: Vec<Addr> = (0..10_000u32)
            .map(|i| Addr::new(i.wrapping_mul(2_654_435_761) >> 8))
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_addrs(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn radix_sort_skips_shared_byte_passes() {
        // Every key below 256 shares its upper three bytes; the sort
        // must still order them using the one discriminating pass.
        let mut v: Vec<Addr> = (0..256u32).rev().map(Addr::new).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_addrs(&mut v);
        assert_eq!(v, expect);
        radix_sort_addrs(&mut Vec::new());
    }

    struct Rig {
        mem: Memory,
        from: Space,
        to: Space,
        stats: GcStats,
    }

    fn rig(words: usize) -> Rig {
        let mut mem = Memory::with_capacity_words(2 * words + 8);
        let from = Space::new(mem.reserve(words).unwrap());
        let to = Space::new(mem.reserve(words).unwrap());
        Rig {
            mem,
            from,
            to,
            stats: GcStats::default(),
        }
    }

    #[test]
    fn forward_copies_once_and_installs_forwarding() {
        let mut r = rig(256);
        let a =
            object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(1), &[41, 42], 0).unwrap();
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        let new1 = ev.forward(a);
        let new2 = ev.forward(a);
        assert_eq!(new1, new2, "second forward follows the forwarding pointer");
        assert_ne!(new1, a);
        assert_eq!(object::field(&r.mem, new1, 1), 42);
        assert_eq!(object::header(&r.mem, a).forward_addr(), Some(new1));
        assert_eq!(r.stats.copied_bytes, 24, "one 3-word object copied once");
    }

    #[test]
    fn drain_copies_transitively_and_updates_fields() {
        let mut r = rig(256);
        // c <- b <- a (a points to b points to c)
        let c = object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(3), &[7], 0).unwrap();
        let b = object::alloc_record(
            &mut r.mem,
            &mut r.from,
            SiteId::new(2),
            &[u64::from(c.raw())],
            0b1,
        )
        .unwrap();
        let a = object::alloc_record(
            &mut r.mem,
            &mut r.from,
            SiteId::new(1),
            &[u64::from(b.raw())],
            0b1,
        )
        .unwrap();
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        let new_a = ev.forward(a);
        ev.drain();
        let new_b = object::ptr_field(&r.mem, new_a, 0);
        let new_c = object::ptr_field(&r.mem, new_b, 0);
        assert!(r.to.contains(new_b) && r.to.contains(new_c));
        assert_eq!(object::field(&r.mem, new_c, 0), 7);
        assert_eq!(r.stats.copied_bytes, 3 * 16);
    }

    #[test]
    fn null_and_foreign_pointers_pass_through() {
        let mut r = rig(64);
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        assert_eq!(ev.forward(Addr::NULL), Addr::NULL);
        let foreign = from_ranges[0].end; // start of to-space, not in from-space
        assert_eq!(ev.forward(foreign), foreign);
        assert_eq!(r.stats.copied_bytes, 0);
    }

    #[test]
    fn copies_age_and_lose_dirty_bit() {
        let mut r = rig(64);
        let a = object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(1), &[0], 0).unwrap();
        let h = object::header(&r.mem, a).with_dirty(true);
        object::set_header(&mut r.mem, a, h);
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        let new = ev.forward(a);
        let nh = object::header(&r.mem, new);
        assert_eq!(nh.age(), 1);
        assert!(!nh.is_dirty());
    }

    #[test]
    fn large_objects_are_marked_and_scanned_not_copied() {
        let mut mem = Memory::with_capacity_words(4096);
        let mut from = Space::new(mem.reserve(256).unwrap());
        let mut to = Space::new(mem.reserve(256).unwrap());
        let mut los = LargeObjectSpace::new(mem.reserve(2048).unwrap());
        let mut stats = GcStats::default();

        // A small record in from-space...
        let small = object::alloc_record(&mut mem, &mut from, SiteId::new(1), &[5], 0).unwrap();
        // ...pointed to by a large pointer array in the LOS.
        let big_words = 1 + 300;
        let big = los.alloc(big_words).unwrap();
        let h = Header::ptr_array(300, SiteId::new(2)).unwrap();
        object::set_header(&mut mem, big, h);
        for i in 0..300 {
            object::set_field(&mut mem, big, i, 0);
        }
        object::set_field(&mut mem, big, 7, u64::from(small.raw()));

        los.begin_marking();
        let from_ranges = [from.range()];
        let mut ev = Evacuator::new(
            &mut mem,
            &from_ranges,
            &mut to,
            None,
            Some(&mut los),
            None,
            &mut stats,
            CostModel::default(),
        );
        let fwd = ev.forward(big);
        assert_eq!(fwd, big, "large objects never move");
        ev.drain();
        // The small record was reached through the large array and copied;
        // the array's field was updated.
        let new_small = object::ptr_field(&mem, big, 7);
        assert!(to.contains(new_small));
        assert_eq!(object::field(&mem, new_small, 0), 5);
        assert_eq!(
            los.sweep().len(),
            0,
            "marked large object survives the sweep"
        );
    }

    #[test]
    fn scan_in_place_forwards_fields_without_moving_owner() {
        let mut r = rig(256);
        let child = object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(1), &[9], 0).unwrap();
        // Owner lives in to-space (e.g. a freshly pretenured object).
        let owner = object::alloc_record(
            &mut r.mem,
            &mut r.to,
            SiteId::new(2),
            &[u64::from(child.raw())],
            0b1,
        )
        .unwrap();
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        ev.scan_in_place(owner, true);
        ev.drain();
        let new_child = object::ptr_field(&r.mem, owner, 0);
        assert_ne!(new_child, child);
        assert_eq!(object::field(&r.mem, new_child, 0), 9);
        assert!(r.stats.pretenured_scanned_words > 0);
    }

    #[test]
    fn survivor_space_receives_young_objects_until_the_threshold() {
        let mut mem = Memory::with_capacity_words(1024);
        let mut from = Space::new(mem.reserve(256).unwrap());
        let mut tenured = Space::new(mem.reserve(256).unwrap());
        let mut survivor = Space::new(mem.reserve(256).unwrap());
        let mut stats = GcStats::default();
        // Two objects: one brand new (age 0), one that has already
        // survived twice (age 2). Threshold 3: the first goes to the
        // survivor space, the second tenures.
        let young = object::alloc_record(&mut mem, &mut from, SiteId::new(1), &[1], 0).unwrap();
        let older = object::alloc_record(&mut mem, &mut from, SiteId::new(2), &[2], 0).unwrap();
        let h = object::header(&mem, older).with_age(2);
        object::set_header(&mut mem, older, h);

        let from_ranges = [from.range()];
        let mut ev = Evacuator::new(
            &mut mem,
            &from_ranges,
            &mut tenured,
            None,
            None,
            None,
            &mut stats,
            CostModel::default(),
        );
        ev.set_survivor(&mut survivor, 3);
        let new_young = ev.forward(young);
        let new_older = ev.forward(older);
        ev.drain();
        assert!(survivor.contains(new_young), "age 1 < 3: stays young");
        assert!(tenured.contains(new_older), "age 3 >= 3: tenured");
        assert_eq!(object::header(&mem, new_young).age(), 1);
        assert_eq!(object::header(&mem, new_older).age(), 3);
    }

    #[test]
    fn survivor_space_objects_are_cheney_scanned() {
        let mut mem = Memory::with_capacity_words(1024);
        let mut from = Space::new(mem.reserve(256).unwrap());
        let mut tenured = Space::new(mem.reserve(256).unwrap());
        let mut survivor = Space::new(mem.reserve(256).unwrap());
        let mut stats = GcStats::default();
        // A young parent (goes to survivor space) pointing at a young
        // child: the drain must chase through the survivor cursor.
        let child = object::alloc_record(&mut mem, &mut from, SiteId::new(1), &[7], 0).unwrap();
        let parent = object::alloc_record(
            &mut mem,
            &mut from,
            SiteId::new(2),
            &[u64::from(child.raw())],
            0b1,
        )
        .unwrap();
        let from_ranges = [from.range()];
        let mut ev = Evacuator::new(
            &mut mem,
            &from_ranges,
            &mut tenured,
            None,
            None,
            None,
            &mut stats,
            CostModel::default(),
        );
        ev.set_survivor(&mut survivor, 4);
        let new_parent = ev.forward(parent);
        ev.drain();
        let new_child = object::ptr_field(&mem, new_parent, 0);
        assert!(survivor.contains(new_parent));
        assert!(
            survivor.contains(new_child),
            "child chased via the survivor scan cursor"
        );
        assert_eq!(object::field(&mem, new_child, 0), 7);
    }

    #[test]
    fn profile_sees_promotions() {
        let mut r = rig(256);
        let a = object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(4), &[1], 0).unwrap();
        let mut profile = HeapProfile::new();
        profile.on_alloc(a, SiteId::new(4), 16);
        let from_ranges = [r.from.range()];
        let nursery = Some(r.from.range());
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            nursery,
            None,
            Some(&mut profile),
            &mut r.stats,
            CostModel::default(),
        );
        ev.forward(a);
        ev.drain();
        let row = profile.site(SiteId::new(4)).unwrap();
        assert_eq!(row.survived_first, 1);
        assert_eq!(row.copied_bytes, 16);
    }
}
