//! The shared tracing driver: a work-queue transitive closure over the
//! object graph, used by every [`Plan`](crate::Plan).
//!
//! An [`Evacuator`] is one collection's driver state. The plan configures
//! it with the *from* ranges being vacated, the *to* space receiving
//! survivors, and (optionally) an aging survivor space and the mark-sweep
//! large-object space — i.e. the plan's per-space
//! [`CopySemantics`](crate::CopySemantics) assignment. The driver's gray
//! set has two representations, matching the two families of semantics:
//!
//! * **Cheney scan cursors** for the moving spaces (`to` and the survivor
//!   space): a freshly copied object *is* its own queue entry, scanned
//!   when the cursor reaches it (the classic two-finger scan);
//! * an explicit [`ObjectQueue`] for objects traced **without moving** —
//!   marked large objects, and anything a plan feeds through
//!   [`scan_in_place`](Evacuator::scan_in_place) recursively discovers.
//!
//! [`drain`](Evacuator::drain) interleaves the two until nothing gray
//! remains. Root feeding is shared too:
//! [`forward_roots`](Evacuator::forward_roots) relocates every root
//! location a stack scan produced and charges the paper's per-root costs,
//! identically for every plan.
//!
//! With [`set_workers`](Evacuator::set_workers) the driver switches the
//! three tracing steps — root forwarding, store-buffer filtering, and
//! the closure drain — onto the parallel work-packet lanes of the
//! [`scheduler`](crate::scheduler) module: workers race to claim
//! from-space objects through the atomic
//! [`SharedMemView`](tilgc_mem::SharedMemView) and copy them into
//! per-worker bump chunks. The serial lane (`workers == 1`, the
//! default) never touches any of that machinery and remains the
//! byte-identical oracle.

use tilgc_mem::{
    object, Addr, Header, Memory, ObjectKind, SharedMemView, SideBitmap, SideMetaView, Space,
    SpaceRange, MAX_RECORD_FIELDS,
};
use tilgc_obs::TelemetryAcc;
use tilgc_runtime::{CostModel, GcStats, HeapProfile, MutatorState};

use crate::los::LargeObjectSpace;
use crate::roots::{read_root, write_root, RootLoc};
use crate::scheduler::{
    packetize, reorder_packets, CycleBudget, PacketQueue, PendingClaim, SectionFaults,
    SharedCursor, WorkerCopyAlloc, WorkerDelta, WorkerFaultKind, WorkerFaultSpec,
};

/// Watchdog deadline used when a stall fault is armed but no explicit
/// deadline was configured (a stalled worker would otherwise deadlock
/// its section), and the interval at which the watchdog rescans.
const DEFAULT_STALL_DEADLINE: std::time::Duration = std::time::Duration::from_millis(10);
const WATCHDOG_POLL: std::time::Duration = std::time::Duration::from_micros(500);

/// The explicit half of the driver's gray set: objects that will be
/// traced in place (large objects, pretenured regions) rather than
/// discovered by a Cheney scan cursor.
#[derive(Debug, Default)]
pub struct ObjectQueue {
    pending: Vec<Addr>,
}

impl ObjectQueue {
    /// Enqueues a gray object for an in-place field scan.
    pub fn push(&mut self, addr: Addr) {
        self.pending.push(addr);
    }

    /// Takes the next gray object, LIFO.
    pub fn pop(&mut self) -> Option<Addr> {
        self.pending.pop()
    }

    /// Whether any gray objects remain queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

/// In debug builds, vacated spaces are filled with this pattern so that a
/// stale pointer dereference fails loudly instead of reading garbage.
pub const POISON: u64 = 0xdead_dead_dead_dead;

/// Snapshot of a collection's fault-tolerance outcome (see
/// [`Evacuator::fault_outcome`]). All zeros / `false` on fault-free
/// runs — the plans' updates from it are then no-ops.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FaultOutcome {
    /// Whether the armed injected fault fired this collection.
    pub fired: bool,
    /// Workers lost across the collection's parallel sections.
    pub workers_lost: u64,
    /// Whether any section degraded to the serial drain.
    pub degraded: bool,
    /// First degradation trigger, if degraded.
    pub trigger: Option<&'static str>,
    /// Packets drained serially after their section closed.
    pub leftover_packets: u64,
}

/// One collection's copying state.
pub struct Evacuator<'a> {
    mem: &'a mut Memory,
    from: &'a [SpaceRange],
    /// Bounding hull of all `from` ranges: one range check rejects (or,
    /// when the hull is gap-free, accepts) most addresses without the
    /// per-range linear scan.
    from_hull: SpaceRange,
    /// Whether the `from` ranges tile `from_hull` without gaps, making the
    /// hull check exact on its own.
    from_exact: bool,
    to: &'a mut Space,
    nursery: Option<SpaceRange>,
    los: Option<&'a mut LargeObjectSpace>,
    profile: Option<&'a mut HeapProfile>,
    stats: &'a mut GcStats,
    /// Telemetry accumulator lent by the plan while a recorder is
    /// installed: per-site copy/survival deltas and the object-size
    /// histogram. Host-side only — never charged simulated cycles.
    telem: Option<&'a mut TelemetryAcc>,
    cost: CostModel,
    scan: Addr,
    /// Optional aging destination (§7.2 tenure-threshold variant):
    /// from-space objects younger than `tenure_age` are copied here
    /// instead of into `to`.
    survivor: Option<&'a mut Space>,
    survivor_scan: Addr,
    tenure_age: u8,
    queue: ObjectQueue,
    /// Old-generation objects observed (during this collection) to hold
    /// a reference into the survivor space. With a tenure threshold,
    /// survivors move again at the next minor collection, so these
    /// references form a remembered set the collector must rescan.
    young_owner_refs: Vec<Addr>,
    /// Old-generation *field locations* (from store-buffer entries) whose
    /// relocated target stayed in the survivor space.
    young_field_locs: Vec<Addr>,
    /// Tracing worker count. `1` (the default) is the serial oracle
    /// lane; anything higher routes the tracing steps through the
    /// work-packet scheduler.
    workers: usize,
    /// Torture-harness fault injection: deterministically permute packet
    /// order and give odd workers a LIFO queue pop.
    packet_reorder: bool,
    /// Per-worker copied-byte totals for this collection (empty on the
    /// serial lane). Index 0 also absorbs copies made by serial code
    /// between parallel sections, so the vector always sums to the
    /// collection's `copied_bytes` delta.
    worker_copied: Vec<u64>,
    /// Armed worker fault for this collection (fault injection); fires
    /// at most once across all parallel sections.
    fault: Option<WorkerFaultSpec>,
    /// Whether the armed fault fired in some section already.
    fault_fired: bool,
    /// Wall-clock deadline after which the watchdog marks a worker
    /// holding an in-flight packet lost. `None` disables the watchdog
    /// (it is still forced on, with a default deadline, while a stall
    /// fault is armed — a stalled worker would otherwise deadlock the
    /// section).
    watchdog: Option<std::time::Duration>,
    /// Per-worker, per-section simulated-cycle ceiling (the watchdog's
    /// deterministic half); `u64::MAX` disables the check.
    cycle_budget: u64,
    /// Workers lost (panicked, stalled past the deadline, or over
    /// budget) during this collection.
    workers_lost: u64,
    /// Whether any section degraded: lost a worker or left packets for
    /// the coordinator's serial drain.
    degraded: bool,
    /// First degradation trigger: `"panic"`, `"watchdog"`, `"budget"`,
    /// or `"orphan"` (leftover packets with no recorded loss).
    degrade_trigger: Option<&'static str>,
    /// Packets the coordinator drained serially after sections closed.
    leftover_packets: u64,
}

impl<'a> Evacuator<'a> {
    /// Creates an evacuator copying live objects out of `from` into `to`.
    ///
    /// `nursery` identifies which of the `from` ranges is the allocation
    /// area, so the profiler can distinguish first promotions (the "% old"
    /// statistic) from later copies. `los`, when given, receives
    /// mark/scan treatment instead of copying.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mem: &'a mut Memory,
        from: &'a [SpaceRange],
        to: &'a mut Space,
        nursery: Option<SpaceRange>,
        los: Option<&'a mut LargeObjectSpace>,
        profile: Option<&'a mut HeapProfile>,
        stats: &'a mut GcStats,
        cost: CostModel,
    ) -> Evacuator<'a> {
        let scan = to.frontier();
        let from_hull = match from.first() {
            Some(&first) => from.iter().fold(first, |hull, r| SpaceRange {
                start: hull.start.min(r.start),
                end: hull.end.max(r.end),
            }),
            None => SpaceRange {
                start: Addr::NULL,
                end: Addr::NULL,
            },
        };
        // Reservations never overlap, so covering the hull word-for-word
        // means the ranges tile it contiguously.
        let covered: usize = from.iter().map(|r| r.end - r.start).sum();
        let from_exact = covered == from_hull.end - from_hull.start;
        Evacuator {
            mem,
            from,
            from_hull,
            from_exact,
            to,
            nursery,
            los,
            profile,
            stats,
            telem: None,
            cost,
            scan,
            survivor: None,
            survivor_scan: Addr::NULL,
            tenure_age: 0,
            queue: ObjectQueue::default(),
            young_owner_refs: Vec::new(),
            young_field_locs: Vec::new(),
            workers: 1,
            packet_reorder: false,
            worker_copied: Vec::new(),
            fault: None,
            fault_fired: false,
            watchdog: None,
            cycle_budget: u64::MAX,
            workers_lost: 0,
            degraded: false,
            degrade_trigger: None,
            leftover_packets: 0,
        }
    }

    /// Switches this collection onto the parallel work-packet lanes with
    /// `workers` tracing threads. A no-op for `workers == 1`.
    ///
    /// The parallel lanes support the plain copying configurations only:
    /// the plans' headroom gate calls this exclusively when no survivor
    /// space and no heap profile are attached (profiled runs and the
    /// §7.2 tenure-threshold variant always take the serial lane).
    ///
    /// # Panics
    ///
    /// Panics if a survivor space or profile is attached.
    pub fn set_workers(&mut self, workers: usize, packet_reorder: bool) {
        assert!(workers >= 1, "worker count must be positive");
        if workers == 1 {
            return;
        }
        assert!(
            self.survivor.is_none() && self.profile.is_none(),
            "parallel collection excludes survivor aging and profiling"
        );
        self.workers = workers;
        self.packet_reorder = packet_reorder;
        self.worker_copied = vec![0; workers];
    }

    /// Whether this collection runs on the parallel lanes.
    #[inline]
    pub fn parallel(&self) -> bool {
        self.workers > 1
    }

    /// Per-worker copied-byte totals (empty on the serial lane). Sums to
    /// the `copied_bytes` this collection added to `GcStats`.
    pub fn worker_copied(&self) -> &[u64] {
        &self.worker_copied
    }

    /// Arms a deterministic worker fault for this collection (fault
    /// injection). The spec's worker index is taken modulo the worker
    /// count when the parallel lane engages; the fault fires at most
    /// once.
    pub fn set_worker_fault(&mut self, fault: Option<WorkerFaultSpec>) {
        self.fault = fault;
    }

    /// Sets the watchdog's wall-clock deadline for unresponsive workers
    /// (`None` disables it, except while a stall fault is armed).
    pub fn set_watchdog_ms(&mut self, ms: Option<u64>) {
        self.watchdog = ms.map(std::time::Duration::from_millis);
    }

    /// Sets the per-worker, per-section simulated-cycle budget (`None`
    /// = unlimited).
    pub fn set_cycle_budget(&mut self, budget: Option<u64>) {
        self.cycle_budget = budget.unwrap_or(u64::MAX);
    }

    /// Whether the armed fault fired during this collection.
    pub fn fault_fired(&self) -> bool {
        self.fault_fired
    }

    /// Workers lost during this collection.
    pub fn workers_lost(&self) -> u64 {
        self.workers_lost
    }

    /// Whether any parallel section degraded to the serial drain.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// The first degradation trigger (`"panic"`, `"watchdog"`,
    /// `"budget"`, or `"orphan"`), if the collection degraded.
    pub fn degrade_trigger(&self) -> Option<&'static str> {
        self.degrade_trigger
    }

    /// Packets the coordinator drained on the serial path after their
    /// section closed.
    pub fn leftover_packets(&self) -> u64 {
        self.leftover_packets
    }

    /// One-call snapshot of the collection's fault-tolerance outcome,
    /// read by plans after the drain (the evacuator's `GcStats` borrow
    /// ends there) to update run counters and emit degradation events.
    pub(crate) fn fault_outcome(&self) -> FaultOutcome {
        FaultOutcome {
            fired: self.fault_fired,
            workers_lost: self.workers_lost,
            degraded: self.degraded,
            trigger: self.degrade_trigger,
            leftover_packets: self.leftover_packets,
        }
    }

    /// Routes from-space objects whose post-copy age is below
    /// `tenure_age` into `survivor` instead of `to` — the §7.2
    /// tenure-threshold discipline ("counter bits within each object
    /// record the number of minor collections the object has survived").
    pub fn set_survivor(&mut self, survivor: &'a mut Space, tenure_age: u8) {
        self.survivor_scan = survivor.frontier();
        self.survivor = Some(survivor);
        self.tenure_age = tenure_age;
    }

    /// Lends the plan's telemetry accumulator to this collection so
    /// copies and in-place scans feed the per-site counters and size
    /// histogram.
    pub fn set_telemetry(&mut self, telem: &'a mut TelemetryAcc) {
        self.telem = Some(telem);
    }

    /// Total simulated GC cycles charged so far, read through the stats
    /// borrow this evacuator holds — lets a plan mark phase boundaries
    /// while the collection is in flight.
    pub fn current_gc_cycles(&self) -> u64 {
        self.stats.gc_cycles()
    }

    /// Whether `addr` lies in a range being vacated.
    ///
    /// The common cases — one from-range (minor collections), or several
    /// contiguous ones — are decided by a single hull comparison; only a
    /// gappy multi-range hull falls back to the per-range scan. Debug
    /// builds re-check every answer against the per-range truth, so a
    /// space layout that breaks the hull's tiling assumption fails loudly
    /// instead of silently over-approximating membership.
    #[inline]
    pub fn in_from_space(&self, addr: Addr) -> bool {
        let fast = self.from_hull.contains(addr)
            && (self.from_exact || self.from.iter().any(|r| r.contains(addr)));
        debug_assert_eq!(
            fast,
            self.from.iter().any(|r| r.contains(addr)),
            "bounding-hull membership diverged from per-range truth for {addr:?} \
             (hull {:?}, exact {})",
            self.from_hull,
            self.from_exact,
        );
        fast
    }

    /// The pre-batching membership test: a linear scan over every
    /// from-range per queried word. Kept for A/B comparison against the
    /// hull fast path.
    #[cfg(any(test, feature = "kernel-ref"))]
    #[inline]
    pub fn in_from_space_reference(&self, addr: Addr) -> bool {
        self.from.iter().any(|r| r.contains(addr))
    }

    /// Whether `addr` lies in the survivor (aging) space.
    #[inline]
    fn in_survivor(&self, addr: Addr) -> bool {
        self.survivor.as_ref().is_some_and(|s| s.contains(addr))
    }

    /// Old-generation objects found referencing survivor-space objects —
    /// the §7.2 remembered set the next minor collection must rescan.
    pub fn take_young_owner_refs(&mut self) -> Vec<Addr> {
        std::mem::take(&mut self.young_owner_refs)
    }

    /// Old-generation field locations whose targets stayed young.
    pub fn take_young_field_locs(&mut self) -> Vec<Addr> {
        std::mem::take(&mut self.young_field_locs)
    }

    /// Forwards a raw word (no-op for words that do not point into
    /// from-space — which is exactly why forwarding must only ever be
    /// applied to words *known* to be pointers).
    #[inline]
    pub fn forward_word(&mut self, word: u64) -> u64 {
        u64::from(self.forward(Addr::new(word as u32)).raw())
    }

    /// Forwards a pointer, copying the target on first contact.
    ///
    /// # Panics
    ///
    /// Panics if to-space overflows — the heap budget is exhausted.
    pub fn forward(&mut self, addr: Addr) -> Addr {
        if addr.is_null() {
            return addr;
        }
        if self.in_from_space(addr) {
            let h = object::header(self.mem, addr);
            if let Some(to) = h.forward_addr() {
                return to;
            }
            let words = h.size_words();
            let new_age = h.age().saturating_add(1);
            let site = self.mem.site_of(addr);
            let dest = match self.survivor.as_deref_mut() {
                Some(survivor) if new_age < self.tenure_age && survivor.fits(words) => survivor,
                _ => &mut *self.to,
            };
            let new = dest
                .alloc(words)
                .unwrap_or_else(|_| panic!("to-space overflow: heap budget exhausted"));
            self.mem.copy_words(addr, new, words);
            // Survivors age by one collection. The dirty bit lives in
            // the side bitmap now and stays behind at the old address
            // (bulk-cleared when the space is vacated); the site tag is
            // the one piece of side metadata that moves with the object.
            object::set_header(self.mem, new, h.with_age(new_age));
            self.mem.set_site(new, site);
            object::set_header(self.mem, addr, Header::forward(new));
            let bytes = h.size_bytes();
            self.stats.copied_bytes += bytes as u64;
            self.stats.copy_cycles += self.cost.copy_per_word * words as u64;
            if self.workers > 1 {
                // Serial-section copy during a parallel collection: the
                // Cheney cursor is disabled (to-space has chunk-slack
                // holes), so the copy must join the explicit gray queue
                // the parallel drain feeds on. Attributed to worker 0
                // so the per-worker totals still sum to `copied_bytes`.
                self.worker_copied[0] += bytes as u64;
                self.queue.push(new);
            }
            if self.profile.is_some() || self.telem.is_some() {
                let from_nursery = self.nursery.is_some_and(|n| n.contains(addr));
                if let Some(p) = self.profile.as_deref_mut() {
                    p.on_copy(addr, new, bytes, from_nursery);
                }
                if let Some(t) = self.telem.as_deref_mut() {
                    t.note_copy(site.get(), bytes as u64, from_nursery);
                }
            }
            new
        } else {
            if let Some(los) = self.los.as_deref() {
                if los.contains(addr) && los.mark(self.mem, addr) {
                    self.stats.copy_cycles += self.cost.large_object_visit;
                    self.queue.push(addr);
                }
            }
            addr
        }
    }

    /// Forwards every root location, writing relocated values back, and
    /// charges the paper's per-root costs (`root_check` for every root
    /// examined, `root_process` for every root that moved). Returns the
    /// number of relocated roots.
    ///
    /// This is the root-feeding step every plan shares: the roots come
    /// from [`scan_stack`](crate::roots::scan_stack) (plus the cached
    /// frames the plan chose to expand), and whether forwarding moves a
    /// root depends only on the from-ranges this driver was configured
    /// with.
    pub fn forward_roots(&mut self, m: &mut MutatorState, roots: &[RootLoc]) -> u64 {
        let mut relocated: u64 = 0;
        if self.parallel() && !roots.is_empty() {
            relocated = self.par_forward_roots(m, roots);
        } else {
            for &loc in roots {
                let word = read_root(m, loc);
                let fwd = self.forward_word(word);
                if fwd != word {
                    write_root(m, loc, fwd);
                    relocated += 1;
                }
            }
        }
        self.stats.roots_found += roots.len() as u64;
        self.stats.stack_cycles +=
            self.cost.root_check * roots.len() as u64 + self.cost.root_process * relocated;
        relocated
    }

    /// The parallel roots section: root words are read serially from the
    /// mutator, forwarded by packet workers, and written back serially —
    /// the mutator state itself is never shared.
    fn par_forward_roots(&mut self, m: &mut MutatorState, roots: &[RootLoc]) -> u64 {
        let words: Vec<(usize, u64)> = roots
            .iter()
            .map(|&loc| read_root(m, loc))
            .enumerate()
            .collect();
        let mut packets = packetize(words);
        if self.packet_reorder {
            reorder_packets(&mut packets);
        }
        let queue: PacketQueue<Vec<(usize, u64)>> = PacketQueue::new(self.workers);
        queue.seed(packets);
        let (mut moves, leftovers) = self.par_section(&queue, |_, shared, alloc, delta, packet| {
            for (i, word) in packet {
                let fwd = shared.forward_word(alloc, delta, word);
                if fwd != word {
                    delta.root_moves.push((i, fwd));
                }
            }
        });
        // Degradation path: root packets the section left behind take
        // the exact serial lane (already-forwarded targets are no-ops,
        // so nothing is charged twice).
        for (i, word) in leftovers.into_iter().flatten() {
            let fwd = self.forward_word(word);
            if fwd != word {
                moves.push((i, fwd));
            }
        }
        let mut relocated = 0u64;
        for (i, fwd) in moves {
            write_root(m, roots[i], fwd);
            relocated += 1;
        }
        relocated
    }

    /// Runs the transitive closure to completion: the Cheney cursors
    /// (to-space, then the survivor space) scan copied objects where they
    /// landed, the [`ObjectQueue`] yields the objects traced in place,
    /// and the loop ends when all three are dry.
    pub fn drain(&mut self) {
        if self.parallel() {
            self.par_drain();
            return;
        }
        loop {
            if self.scan < self.to.frontier() {
                let addr = self.scan;
                let h = object::header(self.mem, addr);
                debug_assert!(!h.is_forward(), "forwarding header in to-space");
                self.scan = addr + h.size_words();
                self.stats.scanned_words += h.size_words() as u64;
                self.stats.copy_cycles += self.cost.scan_per_word * h.size_words() as u64;
                self.scan_fields(addr, h);
            } else if self
                .survivor
                .as_deref()
                .is_some_and(|s| self.survivor_scan < s.frontier())
            {
                let addr = self.survivor_scan;
                let h = object::header(self.mem, addr);
                debug_assert!(!h.is_forward(), "forwarding header in survivor space");
                self.survivor_scan = addr + h.size_words();
                self.stats.scanned_words += h.size_words() as u64;
                self.stats.copy_cycles += self.cost.scan_per_word * h.size_words() as u64;
                self.scan_fields(addr, h);
            } else if let Some(obj) = self.queue.pop() {
                let h = object::header(self.mem, obj);
                self.stats.scanned_words += h.size_words() as u64;
                self.stats.copy_cycles += self.cost.scan_per_word * h.size_words() as u64;
                self.scan_fields(obj, h);
            } else {
                break;
            }
        }
    }

    /// The parallel closure drain. The gray set is queue-driven only —
    /// the Cheney cursors are disabled because chunked copy allocation
    /// leaves slack holes in to-space — so every pending gray object
    /// (copies made by serial sections included) is packetized into a
    /// terminating [`PacketQueue`], and workers push the packets their
    /// scans generate back onto it.
    fn par_drain(&mut self) {
        let mut gray = Vec::new();
        while let Some(obj) = self.queue.pop() {
            gray.push(obj);
        }
        if !gray.is_empty() {
            let mut packets = packetize(gray);
            if self.packet_reorder {
                reorder_packets(&mut packets);
            }
            let queue: PacketQueue<Vec<Addr>> = PacketQueue::new(self.workers);
            queue.seed(packets);
            let (_, leftovers) = self.par_section(&queue, |_, shared, alloc, delta, packet| {
                for obj in packet {
                    shared.scan_obj(alloc, delta, obj);
                }
                // Generative: push the gray this packet discovered back
                // onto the shared queue before the driver completes the
                // packet, keeping the termination protocol sound.
                for fresh in packetize(std::mem::take(&mut delta.gray)) {
                    queue.push(fresh);
                }
            });
            for obj in leftovers.into_iter().flatten() {
                self.queue.push(obj);
            }
            // Close the graph on the exact serial path: leftover
            // packets from a degraded section, plus any gray a failed
            // worker handed back mid-packet (merged into the explicit
            // queue by `par_section`). Empty — and charge-free — on
            // fault-free runs.
            self.serial_close_drain();
        }
        // The scan cursor tracks the frontier so any later serial scan
        // of this space starts past the parallel section's copies.
        self.scan = self.to.frontier();
    }

    /// Serially scans the explicit gray queue to emptiness with the
    /// serial lane's exact charges — the degradation drain. New copies
    /// made here go through the serial [`forward`](Self::forward), which
    /// (on a parallel collection) re-enqueues them and attributes their
    /// bytes to worker 0, so the per-worker accounting still reconciles.
    fn serial_close_drain(&mut self) {
        while let Some(obj) = self.queue.pop() {
            let h = object::header(self.mem, obj);
            self.stats.scanned_words += h.size_words() as u64;
            self.stats.copy_cycles += self.cost.scan_per_word * h.size_words() as u64;
            self.scan_fields(obj, h);
        }
    }

    /// Forwards the pointer stored at memory location `loc` (a sequential
    /// store buffer entry), writing the relocated value back. If the
    /// location is in the old generation and its target stayed in the
    /// survivor space, the location joins the young-refs remembered set.
    pub fn forward_word_at(&mut self, loc: Addr) {
        let word = self.mem.word(loc);
        let fwd = self.forward_word(word);
        if fwd != word {
            self.mem.set_word(loc, fwd);
        }
        if !self.in_from_space(loc)
            && !self.in_survivor(loc)
            && self.in_survivor(Addr::new(fwd as u32))
        {
            self.young_field_locs.push(loc);
        }
    }

    /// Processes one object-marking barrier entry: clears the side dirty
    /// bit and scans the object's fields in place. If the object was
    /// already evacuated (its copy is scanned by the Cheney drain, and
    /// the stale bit at the old address is bulk-cleared when the space
    /// is vacated), nothing is needed.
    pub fn clear_dirty_and_scan(&mut self, obj: Addr) {
        let h = object::header(self.mem, obj);
        if h.is_forward() {
            return;
        }
        self.mem.clear_dirty(obj);
        self.stats.copy_cycles += self.cost.region_scan_per_word * h.size_words() as u64;
        self.scan_fields(obj, h);
    }

    /// Scans an object *in place*, forwarding its pointer fields without
    /// copying the object itself. Used for freshly pretenured regions,
    /// dirty (write-barrier-remembered) objects, and young large arrays.
    ///
    /// `specialized` selects the cheaper per-word cost of the §7.2
    /// site-grouped scan (no per-object tag decoding).
    pub fn scan_in_place(&mut self, addr: Addr, specialized: bool) {
        let h = object::header(self.mem, addr);
        debug_assert!(!h.is_forward(), "in-place scan of forwarded object");
        let per_word = if specialized {
            self.cost.region_scan_per_word
        } else {
            self.cost.scan_per_word
        };
        self.stats.copy_cycles += per_word * h.size_words() as u64;
        self.stats.pretenured_scanned_words += h.size_words() as u64;
        if let Some(t) = self.telem.as_deref_mut() {
            t.note_inplace_scan(h.size_bytes() as u64);
        }
        self.scan_fields(addr, h);
    }

    /// Forwards a batch of store-buffer field locations.
    ///
    /// The batch is sorted and deduplicated first — the paper notes (§4)
    /// that "the simple sequential store list records a mutated site
    /// repeatedly", so a hot field reached the buffer once per store.
    /// Filtering duplicates up front means each distinct location pays the
    /// read-forward-write cycle once. The simulated cost of examining the
    /// buffer is charged per *recorded* entry by the caller, exactly as
    /// before, so `GcStats` is unchanged.
    pub fn forward_field_locs(&mut self, locs: &mut Vec<Addr>) {
        sort_dedup_addrs_via(Some(self.mem.ssb_scratch_mut()), locs);
        if self.parallel() && !locs.is_empty() {
            self.par_forward_field_locs(locs);
            return;
        }
        for &loc in locs.iter() {
            self.forward_word_at(loc);
        }
    }

    /// The parallel store-buffer section: the deduplicated locations are
    /// packetized and each worker read-forward-writes its packet's
    /// fields through the shared view (after deduplication every
    /// location has exactly one writer).
    fn par_forward_field_locs(&mut self, locs: &[Addr]) {
        let mut packets = packetize(locs.to_vec());
        if self.packet_reorder {
            reorder_packets(&mut packets);
        }
        let queue: PacketQueue<Vec<Addr>> = PacketQueue::new(self.workers);
        queue.seed(packets);
        let (_, leftovers) = self.par_section(&queue, |_, shared, alloc, delta, packet| {
            for loc in packet {
                let word = shared.view.load(loc);
                let fwd = shared.forward_word(alloc, delta, word);
                if fwd != word {
                    shared.view.store(loc, fwd);
                }
            }
        });
        // Degradation path: leftover store-buffer locations take the
        // serial read-forward-write (idempotent for locations another
        // worker already fixed up).
        for loc in leftovers.into_iter().flatten() {
            self.forward_word_at(loc);
        }
    }

    /// The pre-batching store-buffer filter: one forward per recorded
    /// entry, duplicates and all. Kept for A/B comparison.
    #[cfg(any(test, feature = "kernel-ref"))]
    pub fn forward_field_locs_reference(&mut self, locs: &[Addr]) {
        for &loc in locs {
            self.forward_word_at(loc);
        }
    }

    /// Scans an object *in place* through the pre-batching field loop.
    /// Kept for A/B comparison against [`scan_in_place`](Self::scan_in_place).
    #[cfg(any(test, feature = "kernel-ref"))]
    pub fn scan_in_place_reference(&mut self, addr: Addr, specialized: bool) {
        let h = object::header(self.mem, addr);
        debug_assert!(!h.is_forward(), "in-place scan of forwarded object");
        let per_word = if specialized {
            self.cost.region_scan_per_word
        } else {
            self.cost.scan_per_word
        };
        self.stats.copy_cycles += per_word * h.size_words() as u64;
        self.stats.pretenured_scanned_words += h.size_words() as u64;
        self.scan_fields_reference(addr, h);
    }

    /// Forwards every pointer field of the object at `addr`, dispatching
    /// to a batched kernel per object kind. All three paths visit the same
    /// fields in the same ascending order as the reference loop and feed
    /// the profiler identically.
    fn scan_fields(&mut self, addr: Addr, h: Header) {
        match h.kind() {
            ObjectKind::RawArray => {}
            ObjectKind::Record => self.scan_record(addr, h),
            ObjectKind::PtrArray => self.scan_ptr_array(addr, h),
        }
    }

    /// Batched record scan: the payload is snapshotted with one bounds
    /// check, pointer fields are found by iterating the set bits of the
    /// header's pointer mask, and the (rarely) updated words are written
    /// back as one slice.
    ///
    /// Snapshotting is sound because [`forward`](Self::forward) only ever
    /// writes to fresh to-space/survivor allocations and to the *headers*
    /// of from-space objects — never into the payload of the object being
    /// scanned (objects are disjoint, and scanned objects are never in
    /// from-space).
    fn scan_record(&mut self, addr: Addr, h: Header) {
        let mut mask = h.ptr_mask();
        if mask == 0 {
            // No pointer fields: nothing to forward, no edges to profile,
            // and `holds_young` stays false — exactly what the reference
            // loop concludes after decoding every field.
            return;
        }
        let len = h.len();
        let base = object::field_addr(addr, 0);
        let mut buf = [0u64; MAX_RECORD_FIELDS];
        let buf = &mut buf[..len];
        buf.copy_from_slice(self.mem.words_at(base, len));

        let owner_is_old = !self.in_from_space(addr) && !self.in_survivor(addr);
        let mut holds_young = false;
        let mut changed = false;
        while mask != 0 {
            let i = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let child = Addr::new(buf[i] as u32);
            if child.is_null() {
                continue;
            }
            let new_child = self.forward(child);
            if new_child != child {
                buf[i] = u64::from(new_child.raw());
                changed = true;
            }
            holds_young |= self.in_survivor(new_child);
            if let Some(p) = self.profile.as_deref_mut() {
                let child_site = self.mem.site_of(new_child);
                p.on_edge(self.mem.site_of(addr), child_site);
            }
        }
        if changed {
            self.mem.words_at_mut(base, len).copy_from_slice(buf);
        }
        if owner_is_old && holds_young {
            self.young_owner_refs.push(addr);
        }
    }

    /// Batched pointer-array scan: elements are processed in fixed-size
    /// chunks, each snapshotted and written back as a slice (every element
    /// of a pointer array is a pointer — no mask to consult).
    fn scan_ptr_array(&mut self, addr: Addr, h: Header) {
        const CHUNK: usize = 64;
        let len = h.len();
        let owner_is_old = !self.in_from_space(addr) && !self.in_survivor(addr);
        let mut holds_young = false;
        let mut buf = [0u64; CHUNK];
        let mut start = 0;
        while start < len {
            let n = CHUNK.min(len - start);
            let base = object::field_addr(addr, start);
            let buf = &mut buf[..n];
            buf.copy_from_slice(self.mem.words_at(base, n));
            let mut changed = false;
            for slot in buf.iter_mut() {
                let child = Addr::new(*slot as u32);
                if child.is_null() {
                    continue;
                }
                let new_child = self.forward(child);
                if new_child != child {
                    *slot = u64::from(new_child.raw());
                    changed = true;
                }
                holds_young |= self.in_survivor(new_child);
                if let Some(p) = self.profile.as_deref_mut() {
                    let child_site = self.mem.site_of(new_child);
                    p.on_edge(self.mem.site_of(addr), child_site);
                }
            }
            if changed {
                self.mem.words_at_mut(base, n).copy_from_slice(buf);
            }
            start += n;
        }
        if owner_is_old && holds_young {
            self.young_owner_refs.push(addr);
        }
    }

    /// The pre-batching scan loop: header-decoded pointer test and one
    /// bounds-checked read/write per field. Kept for A/B comparison.
    #[cfg(any(test, feature = "kernel-ref"))]
    fn scan_fields_reference(&mut self, addr: Addr, h: Header) {
        if h.kind() == ObjectKind::RawArray {
            return;
        }
        let owner_is_old = !self.in_from_space(addr) && !self.in_survivor(addr);
        let mut holds_young = false;
        for i in 0..h.len() {
            if !h.field_is_pointer(i) {
                continue;
            }
            let child = object::ptr_field(self.mem, addr, i);
            if child.is_null() {
                continue;
            }
            let new_child = self.forward(child);
            if new_child != child {
                object::set_field(self.mem, addr, i, u64::from(new_child.raw()));
            }
            holds_young |= self.in_survivor(new_child);
            if let Some(p) = self.profile.as_deref_mut() {
                let child_site = self.mem.site_of(new_child);
                p.on_edge(self.mem.site_of(addr), child_site);
            }
        }
        if owner_is_old && holds_young {
            self.young_owner_refs.push(addr);
        }
    }

    /// Where the to-space scan pointer currently stands (the to-space
    /// frontier once [`drain`](Evacuator::drain) returns).
    pub fn scan_cursor(&self) -> Addr {
        self.scan
    }

    /// Runs one parallel section: spawns `workers` scoped threads over a
    /// freshly built [`ParShared`] context (atomic memory view, atomic
    /// side-metadata view, shared to-space cursor), then merges the
    /// per-worker deltas back into `GcStats` *in worker-index order* —
    /// so the merged totals are independent of thread interleaving.
    ///
    /// The section owns the packet loop: each worker repeatedly pops
    /// from `queue` (recording the packet in its in-flight slot) and
    /// runs `process` on the packet inside `catch_unwind`. A worker
    /// that panics rolls back its in-progress forwarding claim, fails
    /// itself on the queue (requeueing its packet), and retires; a
    /// worker exceeding the simulated-cycle budget retires likewise. A
    /// watchdog (armed by config or forced on while a stall fault is
    /// armed) marks unresponsive workers lost on a wall-clock deadline.
    /// A generative section's `process` pushes the fresh packets it
    /// discovers back onto the queue itself (before the driver
    /// completes the packet, so termination stays sound).
    ///
    /// Returns the merged root relocations and whatever packets the
    /// section could not finish (queue remnants after a loss-threshold
    /// close, plus orphaned in-flight packets) — the caller drains
    /// those on the exact serial path, so the collection's answer is
    /// always the serial oracle's.
    ///
    /// Gray objects the section discovered but did not scan (the
    /// bounded roots/store-buffer sections, and any gray a failed
    /// worker handed back) land on the evacuator's explicit queue;
    /// abandoned chunk tails are recorded as to-space slack.
    fn par_section<T, F>(
        &mut self,
        queue: &PacketQueue<T>,
        process: F,
    ) -> (Vec<(usize, u64)>, Vec<T>)
    where
        T: Clone + PartialEq + Send,
        F: Fn(usize, &ParShared<'_>, &mut WorkerCopyAlloc<'_>, &mut WorkerDelta, T) + Sync,
    {
        let workers = self.workers;
        let frontier = self.to.frontier();
        let limit = frontier + self.to.free_words();
        let telem_on = self.telem.is_some();
        let (view, side) = self.mem.shared_views();
        let shared = ParShared {
            cursor: SharedCursor::new(frontier, limit),
            from: self.from,
            from_hull: self.from_hull,
            from_exact: self.from_exact,
            nursery: self.nursery,
            cost: self.cost,
            workers,
            telem_on,
            los: self.los.as_deref(),
            view,
            side,
        };
        let faults = SectionFaults::new(if self.fault_fired {
            None
        } else {
            self.fault.map(|mut f| {
                f.worker %= workers;
                f
            })
        });
        let budget = CycleBudget::new(self.cycle_budget);
        let watchdog = if faults.stall_armed() {
            Some(self.watchdog.unwrap_or(DEFAULT_STALL_DEADLINE))
        } else {
            self.watchdog
        };
        let reorder = self.packet_reorder;
        let outcomes: Vec<(WorkerDelta, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (shared, process, faults, budget) = (&shared, &process, &faults, &budget);
                    s.spawn(move || {
                        let mut alloc = WorkerCopyAlloc::new(&shared.cursor, shared.workers);
                        let mut delta = WorkerDelta::default();
                        let mut packet_idx = 0usize;
                        loop {
                            if budget.exceeded(delta.copy_cycles + delta.scan_cycles) {
                                // Over the per-section simulated-cycle
                                // deadline: retire as lost; the queue
                                // hands the rest to the serial path.
                                faults.note_lost("budget");
                                queue.fail(w);
                                break;
                            }
                            let Some(packet) = queue.pop_worker(w, reorder && w % 2 == 1) else {
                                break;
                            };
                            let fault = faults.should_fire(w, packet_idx);
                            packet_idx += 1;
                            match fault {
                                Some(WorkerFaultKind::Stall) => {
                                    // Unresponsive until the watchdog
                                    // marks this worker lost (requeueing
                                    // the packet) and releases the latch.
                                    faults.latch.park();
                                    break;
                                }
                                Some(WorkerFaultKind::Drop) => {
                                    // Neither processed nor completed:
                                    // the in-flight clone resurfaces as
                                    // a leftover after the join.
                                    continue;
                                }
                                _ => {}
                            }
                            let unwind =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    if fault == Some(WorkerFaultKind::Panic) {
                                        panic!("injected worker panic");
                                    }
                                    process(w, shared, &mut alloc, &mut delta, packet);
                                }));
                            match unwind {
                                Ok(()) => {
                                    queue.complete(w);
                                }
                                Err(_) => {
                                    // Roll back the claim the unwind
                                    // interrupted (if any): republish
                                    // the original header so spinning
                                    // losers re-claim, and refund the
                                    // abandoned copy destination as
                                    // chunk slack.
                                    if let Some(claim) = delta.pending_claim.take() {
                                        shared.view.publish(claim.addr, claim.original);
                                        delta.tail_slack += claim.dest_words;
                                    }
                                    faults.note_lost("panic");
                                    queue.fail(w);
                                    break;
                                }
                            }
                        }
                        (delta, alloc.finish())
                    })
                })
                .collect();
            if let Some(deadline) = watchdog {
                let faults = &faults;
                s.spawn(move || {
                    while !queue.is_done() {
                        for w in queue.stale_workers(deadline) {
                            faults.note_lost("watchdog");
                            queue.mark_lost(w);
                        }
                        // Free any stall-parked worker the scan just
                        // retired so its thread can join.
                        if faults.lost() > 0 {
                            faults.latch.release();
                        }
                        std::thread::sleep(WATCHDOG_POLL);
                    }
                    faults.latch.release();
                });
            }
            handles
                .into_iter()
                // An Err means the worker died outside the caught
                // packet loop (queue bookkeeping itself panicked).
                // Defensive: its delta is gone, but the heap stays
                // sound — published copies are complete and its
                // in-flight packet resurfaces as a leftover.
                .map(|h| h.join().unwrap_or_default())
                .collect()
        });
        let new_frontier = shared.cursor.frontier();
        self.to.advance_frontier(new_frontier);
        let mut root_moves = Vec::new();
        for (w, (delta, chunk_tail)) in outcomes.into_iter().enumerate() {
            self.worker_copied[w] += delta.copied_bytes;
            self.stats.copied_bytes += delta.copied_bytes;
            self.stats.copy_cycles += delta.copy_cycles + delta.scan_cycles;
            self.stats.scanned_words += delta.scanned_words;
            self.to.note_slack(chunk_tail + delta.tail_slack);
            if let Some(t) = self.telem.as_deref_mut() {
                for &(site, bytes, from_nursery) in &delta.telem_copies {
                    t.note_copy(site, bytes, from_nursery);
                }
            }
            for obj in delta.gray {
                self.queue.push(obj);
            }
            root_moves.extend(delta.root_moves);
        }
        if faults.fired() {
            self.fault_fired = true;
        }
        self.workers_lost += faults.lost();
        let leftovers = queue.take_leftovers();
        if faults.lost() > 0 || !leftovers.is_empty() {
            self.degraded = true;
            if self.degrade_trigger.is_none() {
                self.degrade_trigger = Some(faults.trigger().unwrap_or("orphan"));
            }
            self.leftover_packets += leftovers.len() as u64;
        }
        (root_moves, leftovers)
    }
}

/// The immutable context every worker of one parallel section shares:
/// the atomic memory view, the atomic side-metadata view (mark bitmap +
/// site bytemap), the section's to-space cursor, the from-range
/// membership data, and a read-only borrow of the large-object space
/// (its mark state lives in the side bitmap, so marking needs no lock).
/// All tracing state a worker mutates lives in its own [`WorkerDelta`].
struct ParShared<'s> {
    view: SharedMemView<'s>,
    side: SideMetaView<'s>,
    cursor: SharedCursor,
    from: &'s [SpaceRange],
    from_hull: SpaceRange,
    from_exact: bool,
    nursery: Option<SpaceRange>,
    cost: CostModel,
    workers: usize,
    telem_on: bool,
    los: Option<&'s LargeObjectSpace>,
}

impl ParShared<'_> {
    /// The hull-accelerated from-space membership test (same logic as
    /// [`Evacuator::in_from_space`], minus the debug cross-check that
    /// needs `&Evacuator`).
    #[inline]
    fn in_from(&self, addr: Addr) -> bool {
        self.from_hull.contains(addr)
            && (self.from_exact || self.from.iter().any(|r| r.contains(addr)))
    }

    /// [`Evacuator::forward_word`] on the parallel lane.
    #[inline]
    fn forward_word(
        &self,
        alloc: &mut WorkerCopyAlloc<'_>,
        delta: &mut WorkerDelta,
        word: u64,
    ) -> u64 {
        u64::from(self.forward(alloc, delta, Addr::new(word as u32)).raw())
    }

    /// [`Evacuator::forward`] on the parallel lane: the claim/publish
    /// protocol. The winner CASes the from-space header to the busy
    /// sentinel, copies the payload into its private chunk, stores the
    /// copy's header, then release-publishes the forwarding header;
    /// losers spin until the forwarding pointer appears. Charges match
    /// the serial lane per object exactly, so the merged totals are
    /// identical.
    fn forward(
        &self,
        alloc: &mut WorkerCopyAlloc<'_>,
        delta: &mut WorkerDelta,
        addr: Addr,
    ) -> Addr {
        if addr.is_null() {
            return addr;
        }
        if !self.in_from(addr) {
            if let Some(los) = self.los {
                // Lock-free large-object marking: the mark bit lives in
                // the atomic side bitmap, so workers race on a fetch_or
                // and exactly one wins the scan.
                if los.contains(addr) && self.side.mark_test_and_set(addr) {
                    delta.copy_cycles += self.cost.large_object_visit;
                    delta.large_marked += 1;
                    delta.gray.push(addr);
                }
            }
            return addr;
        }
        loop {
            let raw = self.view.load_header_acquire(addr);
            if raw == SharedMemView::BUSY {
                std::hint::spin_loop();
                continue;
            }
            let h = Header::from_raw(raw);
            if let Some(to) = h.forward_addr() {
                return to;
            }
            if self.view.try_claim(addr, raw).is_err() {
                // Lost the race; the next header load sees the winner's
                // sentinel or its published forwarding pointer.
                continue;
            }
            // From here to the publish below the claim is this worker's
            // liability: record it so an unwind (allocation failure, or
            // any panic while the BUSY sentinel is visible) can be
            // rolled back by the packet loop instead of wedging every
            // loser spinning on the sentinel.
            delta.pending_claim = Some(PendingClaim {
                addr,
                original: raw,
                dest_words: 0,
            });
            let words = h.size_words();
            let new = alloc
                .alloc(words)
                .unwrap_or_else(|| panic!("to-space overflow: heap budget exhausted"));
            if let Some(claim) = delta.pending_claim.as_mut() {
                claim.dest_words = words;
            }
            // The from-space header word holds the busy sentinel, so the
            // payload copy skips word 0 and the copy's header is written
            // directly from the claimed value.
            self.view.copy_words(addr + 1usize, new + 1usize, words - 1);
            let new_h = h.with_age(h.age().saturating_add(1));
            self.view.store(new, new_h.raw());
            // The site tag moves with the object; the copy must be
            // visible before the forwarding header is published, which
            // the release store below guarantees.
            self.side.copy_site(addr, new);
            self.view.publish(addr, Header::forward(new).raw());
            // Published: the copy is complete and visible, the claim is
            // discharged, and only now are the charges taken — so an
            // unwound claim never leaves partial charges behind.
            delta.pending_claim = None;
            let bytes = h.size_bytes() as u64;
            delta.copied_bytes += bytes;
            delta.copy_cycles += self.cost.copy_per_word * words as u64;
            if self.telem_on {
                let from_nursery = self.nursery.is_some_and(|n| n.contains(addr));
                delta
                    .telem_copies
                    .push((self.side.site_of(addr).get(), bytes, from_nursery));
            }
            delta.gray.push(new);
            return new;
        }
    }

    /// Scans one gray object (a to-space copy or a marked large object),
    /// forwarding its pointer fields through the view. The object is
    /// private to this worker — every gray object is enqueued exactly
    /// once, by its claim (or mark) winner — so plain loads and stores
    /// on its payload cannot race.
    ///
    /// The parallel gate excludes profiling and the survivor space, so
    /// unlike [`Evacuator::scan_fields`] there are no profile edges and
    /// no young-owner bookkeeping to replicate here.
    fn scan_obj(&self, alloc: &mut WorkerCopyAlloc<'_>, delta: &mut WorkerDelta, addr: Addr) {
        let h = Header::from_raw(self.view.load(addr));
        debug_assert!(!h.is_forward(), "gray object carries a forwarding header");
        let words = h.size_words() as u64;
        delta.scanned_words += words;
        delta.scan_cycles += self.cost.scan_per_word * words;
        match h.kind() {
            ObjectKind::RawArray => {}
            ObjectKind::Record => {
                let mut mask = h.ptr_mask();
                let base = object::field_addr(addr, 0);
                while mask != 0 {
                    let i = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    self.forward_field(alloc, delta, base + i);
                }
            }
            ObjectKind::PtrArray => {
                let base = object::field_addr(addr, 0);
                for i in 0..h.len() {
                    self.forward_field(alloc, delta, base + i);
                }
            }
        }
    }

    /// Forwards the pointer stored at `loc`, writing back on change.
    #[inline]
    fn forward_field(&self, alloc: &mut WorkerCopyAlloc<'_>, delta: &mut WorkerDelta, loc: Addr) {
        let word = self.view.load(loc);
        let child = Addr::new(word as u32);
        if child.is_null() {
            return;
        }
        let fwd = self.forward(alloc, delta, child);
        if fwd != child {
            self.view.store(loc, u64::from(fwd.raw()));
        }
    }
}

/// Buffers at least this long are radix-sorted in
/// [`Evacuator::forward_field_locs`]; shorter ones use the standard
/// comparison sort (lower constant factors at small sizes).
const RADIX_SORT_MIN: usize = 2048;

/// Sorts and deduplicates a store-buffer address batch, producing the
/// ascending unique locations — exactly `sort_unstable` + `dedup`, with
/// two fast paths picked by batch shape:
///
/// * **dense batches** (address span under 64× the entry count — the
///   common store-buffer shape, hot fields clustered in one region) are
///   collapsed through a span bitmap: one set-bit pass over the
///   entries, one `trailing_zeros` walk over the bitmap words. Linear
///   in entries + span words, no sort at all — this is what restored
///   the store-buffer filter's edge over the unbatched reference
///   kernel;
/// * sparse batches of [`RADIX_SORT_MIN`] or more entries radix-sort;
/// * small sparse batches comparison-sort.
#[cfg(test)]
fn sort_dedup_addrs(locs: &mut Vec<Addr>) {
    sort_dedup_addrs_via(None, locs);
}

/// The `scratch` is an optional persistent bitmap for the dense path.
/// The evacuator passes the heap's side-metadata SSB scratch bitmap, so
/// dense batches dedup with **zero allocation** — the bitmap is sized to
/// the address space and already resident. Callers without a scratch (or
/// batches whose addresses exceed its capacity) fall back to a
/// span-sized temporary bitmap. Both paths emit the same ascending
/// unique sequence.
fn sort_dedup_addrs_via(scratch: Option<&mut SideBitmap>, locs: &mut Vec<Addr>) {
    let n = locs.len();
    if n < 2 {
        return;
    }
    let (mut lo, mut hi) = (u32::MAX, 0u32);
    for &a in locs.iter() {
        lo = lo.min(a.raw());
        hi = hi.max(a.raw());
    }
    let span = (hi - lo) as usize + 1;
    if span / 64 < n {
        if let Some(scratch) = scratch {
            if (hi as usize) < scratch.bit_capacity() {
                for &a in locs.iter() {
                    scratch.set(a);
                }
                locs.clear();
                scratch.drain_sorted(Addr::new(lo), Addr::new(hi), locs);
                return;
            }
        }
        let mut bits = vec![0u64; span.div_ceil(64)];
        for &a in locs.iter() {
            let off = (a.raw() - lo) as usize;
            bits[off / 64] |= 1u64 << (off % 64);
        }
        locs.clear();
        for (w, &bitword) in bits.iter().enumerate() {
            let mut bitword = bitword;
            while bitword != 0 {
                let b = bitword.trailing_zeros() as usize;
                bitword &= bitword - 1;
                locs.push(Addr::new(lo + (w * 64 + b) as u32));
            }
        }
        return;
    }
    if n >= RADIX_SORT_MIN {
        radix_sort_addrs(locs);
    } else {
        locs.sort_unstable();
    }
    locs.dedup();
}

/// Sorts an address batch with an LSB radix sort: O(n) in the 32-bit
/// key width, against the comparison sort's O(n log n). Store buffers
/// are the one place the collector sorts hundreds of thousands of keys
/// (the paper's Peg records 2.9 million updates), where the linear
/// passes win decisively. A preliminary XOR sweep finds the byte
/// positions on which every key agrees — store-buffer addresses
/// cluster in one region, so typically only the low one or two bytes
/// discriminate — and only the discriminating positions get a
/// counting pass.
fn radix_sort_addrs(locs: &mut Vec<Addr>) {
    let n = locs.len();
    if n < 2 {
        return;
    }
    let firstkey = locs[0].raw();
    let mut diff = 0u32;
    for &a in locs.iter() {
        diff |= a.raw() ^ firstkey;
    }
    if diff == 0 {
        return; // all keys equal
    }
    let mut buf = std::mem::take(locs);
    let mut scratch = vec![Addr::NULL; n];
    for p in 0..4 {
        let shift = 8 * p;
        if (diff >> shift) & 0xff == 0 {
            continue; // every key shares this byte
        }
        let mut counts = [0usize; 256];
        for &a in buf.iter() {
            counts[((a.raw() >> shift) & 0xff) as usize] += 1;
        }
        let mut offsets = [0usize; 256];
        let mut sum = 0;
        for (o, &count) in offsets.iter_mut().zip(counts.iter()) {
            *o = sum;
            sum += count;
        }
        for &a in buf.iter() {
            let b = ((a.raw() >> shift) & 0xff) as usize;
            scratch[offsets[b]] = a;
            offsets[b] += 1;
        }
        std::mem::swap(&mut buf, &mut scratch);
    }
    *locs = buf;
}

/// Reports every unforwarded (dead) object in `[start, upto)` to the
/// profiler — the death sweep each plan runs over a vacated range before
/// poisoning and resetting it. A no-op without a profiler.
pub(crate) fn sweep_profile_deaths(
    mem: &Memory,
    profile: Option<&mut HeapProfile>,
    start: Addr,
    upto: Addr,
) {
    if let Some(p) = profile {
        for entry in object::walk(mem, start, upto) {
            if entry.forwarded.is_none() {
                p.on_death(entry.addr);
            }
        }
    }
}

/// Poisons a vacated range in debug builds so stale reads fail loudly.
pub fn poison_range(mem: &mut Memory, range: SpaceRange, upto: Addr) {
    if cfg!(debug_assertions) {
        let end = upto.min(range.end);
        if end > range.start {
            mem.fill(range.start, end - range.start, POISON);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_mem::SiteId;

    #[test]
    fn radix_sort_matches_comparison_sort() {
        // Fixed multiplicative-hash stream: duplicate-heavy, spans all
        // four key bytes, and hits the shared-byte skip on none of them.
        let mut v: Vec<Addr> = (0..10_000u32)
            .map(|i| Addr::new(i.wrapping_mul(2_654_435_761) >> 8))
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_addrs(&mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn radix_sort_skips_shared_byte_passes() {
        // Every key below 256 shares its upper three bytes; the sort
        // must still order them using the one discriminating pass.
        let mut v: Vec<Addr> = (0..256u32).rev().map(Addr::new).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_addrs(&mut v);
        assert_eq!(v, expect);
        radix_sort_addrs(&mut Vec::new());
    }

    struct Rig {
        mem: Memory,
        from: Space,
        to: Space,
        stats: GcStats,
    }

    fn rig(words: usize) -> Rig {
        let mut mem = Memory::with_capacity_words(2 * words + 8);
        let from = Space::new(mem.reserve(words).unwrap());
        let to = Space::new(mem.reserve(words).unwrap());
        Rig {
            mem,
            from,
            to,
            stats: GcStats::default(),
        }
    }

    #[test]
    fn forward_copies_once_and_installs_forwarding() {
        let mut r = rig(256);
        let a =
            object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(1), &[41, 42], 0).unwrap();
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        let new1 = ev.forward(a);
        let new2 = ev.forward(a);
        assert_eq!(new1, new2, "second forward follows the forwarding pointer");
        assert_ne!(new1, a);
        assert_eq!(object::field(&r.mem, new1, 1), 42);
        assert_eq!(object::header(&r.mem, a).forward_addr(), Some(new1));
        assert_eq!(r.stats.copied_bytes, 24, "one 3-word object copied once");
    }

    #[test]
    fn drain_copies_transitively_and_updates_fields() {
        let mut r = rig(256);
        // c <- b <- a (a points to b points to c)
        let c = object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(3), &[7], 0).unwrap();
        let b = object::alloc_record(
            &mut r.mem,
            &mut r.from,
            SiteId::new(2),
            &[u64::from(c.raw())],
            0b1,
        )
        .unwrap();
        let a = object::alloc_record(
            &mut r.mem,
            &mut r.from,
            SiteId::new(1),
            &[u64::from(b.raw())],
            0b1,
        )
        .unwrap();
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        let new_a = ev.forward(a);
        ev.drain();
        let new_b = object::ptr_field(&r.mem, new_a, 0);
        let new_c = object::ptr_field(&r.mem, new_b, 0);
        assert!(r.to.contains(new_b) && r.to.contains(new_c));
        assert_eq!(object::field(&r.mem, new_c, 0), 7);
        assert_eq!(r.stats.copied_bytes, 3 * 16);
    }

    #[test]
    fn null_and_foreign_pointers_pass_through() {
        let mut r = rig(64);
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        assert_eq!(ev.forward(Addr::NULL), Addr::NULL);
        let foreign = from_ranges[0].end; // start of to-space, not in from-space
        assert_eq!(ev.forward(foreign), foreign);
        assert_eq!(r.stats.copied_bytes, 0);
    }

    #[test]
    fn copies_age_and_lose_dirty_bit() {
        let mut r = rig(64);
        let a = object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(1), &[0], 0).unwrap();
        r.mem.set_dirty(a);
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        let new = ev.forward(a);
        let nh = object::header(&r.mem, new);
        assert_eq!(nh.age(), 1);
        assert!(
            !r.mem.is_dirty(new),
            "side dirty bit stays at the old address"
        );
        assert_eq!(
            r.mem.site_of(new),
            SiteId::new(1),
            "site tag moves with the copy"
        );
        assert!(
            r.mem.is_dirty(a),
            "the stale from-space bit is the plan's to bulk-clear at vacate time"
        );
    }

    #[test]
    fn large_objects_are_marked_and_scanned_not_copied() {
        let mut mem = Memory::with_capacity_words(4096);
        let mut from = Space::new(mem.reserve(256).unwrap());
        let mut to = Space::new(mem.reserve(256).unwrap());
        let mut los = LargeObjectSpace::new(mem.reserve(2048).unwrap());
        let mut stats = GcStats::default();

        // A small record in from-space...
        let small = object::alloc_record(&mut mem, &mut from, SiteId::new(1), &[5], 0).unwrap();
        // ...pointed to by a large pointer array in the LOS.
        let big_words = 1 + 300;
        let big = los.alloc(big_words).unwrap();
        let h = Header::ptr_array(300).unwrap();
        object::set_header(&mut mem, big, h);
        mem.set_site(big, SiteId::new(2));
        for i in 0..300 {
            object::set_field(&mut mem, big, i, 0);
        }
        object::set_field(&mut mem, big, 7, u64::from(small.raw()));

        los.begin_marking(&mut mem);
        let from_ranges = [from.range()];
        let mut ev = Evacuator::new(
            &mut mem,
            &from_ranges,
            &mut to,
            None,
            Some(&mut los),
            None,
            &mut stats,
            CostModel::default(),
        );
        let fwd = ev.forward(big);
        assert_eq!(fwd, big, "large objects never move");
        ev.drain();
        // The small record was reached through the large array and copied;
        // the array's field was updated.
        let new_small = object::ptr_field(&mem, big, 7);
        assert!(to.contains(new_small));
        assert_eq!(object::field(&mem, new_small, 0), 5);
        assert_eq!(
            los.sweep(&mem).len(),
            0,
            "marked large object survives the sweep"
        );
    }

    #[test]
    fn scan_in_place_forwards_fields_without_moving_owner() {
        let mut r = rig(256);
        let child = object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(1), &[9], 0).unwrap();
        // Owner lives in to-space (e.g. a freshly pretenured object).
        let owner = object::alloc_record(
            &mut r.mem,
            &mut r.to,
            SiteId::new(2),
            &[u64::from(child.raw())],
            0b1,
        )
        .unwrap();
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        ev.scan_in_place(owner, true);
        ev.drain();
        let new_child = object::ptr_field(&r.mem, owner, 0);
        assert_ne!(new_child, child);
        assert_eq!(object::field(&r.mem, new_child, 0), 9);
        assert!(r.stats.pretenured_scanned_words > 0);
    }

    #[test]
    fn survivor_space_receives_young_objects_until_the_threshold() {
        let mut mem = Memory::with_capacity_words(1024);
        let mut from = Space::new(mem.reserve(256).unwrap());
        let mut tenured = Space::new(mem.reserve(256).unwrap());
        let mut survivor = Space::new(mem.reserve(256).unwrap());
        let mut stats = GcStats::default();
        // Two objects: one brand new (age 0), one that has already
        // survived twice (age 2). Threshold 3: the first goes to the
        // survivor space, the second tenures.
        let young = object::alloc_record(&mut mem, &mut from, SiteId::new(1), &[1], 0).unwrap();
        let older = object::alloc_record(&mut mem, &mut from, SiteId::new(2), &[2], 0).unwrap();
        let h = object::header(&mem, older).with_age(2);
        object::set_header(&mut mem, older, h);

        let from_ranges = [from.range()];
        let mut ev = Evacuator::new(
            &mut mem,
            &from_ranges,
            &mut tenured,
            None,
            None,
            None,
            &mut stats,
            CostModel::default(),
        );
        ev.set_survivor(&mut survivor, 3);
        let new_young = ev.forward(young);
        let new_older = ev.forward(older);
        ev.drain();
        assert!(survivor.contains(new_young), "age 1 < 3: stays young");
        assert!(tenured.contains(new_older), "age 3 >= 3: tenured");
        assert_eq!(object::header(&mem, new_young).age(), 1);
        assert_eq!(object::header(&mem, new_older).age(), 3);
    }

    #[test]
    fn survivor_space_objects_are_cheney_scanned() {
        let mut mem = Memory::with_capacity_words(1024);
        let mut from = Space::new(mem.reserve(256).unwrap());
        let mut tenured = Space::new(mem.reserve(256).unwrap());
        let mut survivor = Space::new(mem.reserve(256).unwrap());
        let mut stats = GcStats::default();
        // A young parent (goes to survivor space) pointing at a young
        // child: the drain must chase through the survivor cursor.
        let child = object::alloc_record(&mut mem, &mut from, SiteId::new(1), &[7], 0).unwrap();
        let parent = object::alloc_record(
            &mut mem,
            &mut from,
            SiteId::new(2),
            &[u64::from(child.raw())],
            0b1,
        )
        .unwrap();
        let from_ranges = [from.range()];
        let mut ev = Evacuator::new(
            &mut mem,
            &from_ranges,
            &mut tenured,
            None,
            None,
            None,
            &mut stats,
            CostModel::default(),
        );
        ev.set_survivor(&mut survivor, 4);
        let new_parent = ev.forward(parent);
        ev.drain();
        let new_child = object::ptr_field(&mem, new_parent, 0);
        assert!(survivor.contains(new_parent));
        assert!(
            survivor.contains(new_child),
            "child chased via the survivor scan cursor"
        );
        assert_eq!(object::field(&mem, new_child, 0), 7);
    }

    #[test]
    fn sort_dedup_matches_sort_then_dedup_on_every_shape() {
        let mut state = 0x1234_5678u32;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        // Dense (bitmap path), sparse-large (radix path), sparse-small
        // (comparison path), duplicates everywhere.
        let shapes: Vec<Vec<Addr>> = vec![
            (0..5000).map(|_| Addr::new(1000 + rng() % 900)).collect(),
            (0..4096).map(|_| Addr::new(rng() >> 4)).collect(),
            (0..100).map(|_| Addr::new(8 + rng() % 2_000_000)).collect(),
            vec![Addr::new(7)],
            vec![],
        ];
        for mut v in shapes {
            let mut expect = v.clone();
            expect.sort_unstable();
            expect.dedup();
            sort_dedup_addrs(&mut v);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn sort_dedup_scratch_bitmap_path_matches_temp_vec_path() {
        let mut mem = Memory::with_capacity_words(1 << 16);
        let mut state = 0x9e37_79b9u32;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for round in 0..20 {
            // Dense cluster inside the heap: the scratch path triggers.
            let base = 1 + rng() % 60_000;
            let mut v: Vec<Addr> = (0..500 + round * 37)
                .map(|_| Addr::new(base + rng() % 400))
                .collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            expect.dedup();
            sort_dedup_addrs_via(Some(mem.ssb_scratch_mut()), &mut v);
            assert_eq!(v, expect, "scratch path diverged in round {round}");
        }
        // The scratch must be left all-clear between batches: a second
        // batch over a disjoint range sees no leftover bits.
        let mut v = vec![Addr::new(40), Addr::new(41), Addr::new(40), Addr::new(45)];
        sort_dedup_addrs_via(Some(mem.ssb_scratch_mut()), &mut v);
        assert_eq!(v, vec![Addr::new(40), Addr::new(41), Addr::new(45)]);
        // Addresses beyond the scratch's capacity fall back cleanly.
        let big = Addr::new((1 << 16) + 64);
        let mut v = vec![big, Addr::new(1 << 16), big];
        sort_dedup_addrs_via(Some(mem.ssb_scratch_mut()), &mut v);
        assert_eq!(v, vec![Addr::new(1 << 16), big]);
    }

    /// Builds a linked list + shared diamond in from-space and returns
    /// the entry points, for serial/parallel equivalence checks.
    fn build_graph(r: &mut Rig, nodes: usize) -> Vec<Addr> {
        let shared =
            object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(9), &[99], 0).unwrap();
        let mut prev = Addr::NULL;
        let mut heads = Vec::new();
        for i in 0..nodes {
            let a = object::alloc_record(
                &mut r.mem,
                &mut r.from,
                SiteId::new(1 + (i % 5) as u16),
                &[u64::from(prev.raw()), u64::from(shared.raw()), i as u64],
                0b011,
            )
            .unwrap();
            if i % 7 == 0 {
                heads.push(a);
            }
            prev = a;
        }
        heads.push(prev);
        heads
    }

    #[test]
    fn parallel_drain_copies_the_same_graph_with_identical_stats() {
        // Serial oracle.
        let mut sr = rig(4096);
        let s_heads = build_graph(&mut sr, 200);
        let from_ranges = [sr.from.range()];
        let mut ev = Evacuator::new(
            &mut sr.mem,
            &from_ranges,
            &mut sr.to,
            None,
            None,
            None,
            &mut sr.stats,
            CostModel::default(),
        );
        let s_new: Vec<Addr> = s_heads.iter().map(|&a| ev.forward(a)).collect();
        ev.drain();
        drop(ev);

        // Parallel lane, 4 workers.
        let mut pr = rig(4096);
        let p_heads = build_graph(&mut pr, 200);
        let from_ranges = [pr.from.range()];
        let mut ev = Evacuator::new(
            &mut pr.mem,
            &from_ranges,
            &mut pr.to,
            None,
            None,
            None,
            &mut pr.stats,
            CostModel::default(),
        );
        ev.set_workers(4, false);
        let p_new: Vec<Addr> = p_heads.iter().map(|&a| ev.forward(a)).collect();
        ev.drain();
        let per_worker: Vec<u64> = ev.worker_copied().to_vec();
        drop(ev);

        // Same counters (parallel charges are interleaving-independent).
        assert_eq!(sr.stats.copied_bytes, pr.stats.copied_bytes);
        assert_eq!(sr.stats.scanned_words, pr.stats.scanned_words);
        assert_eq!(sr.stats.copy_cycles, pr.stats.copy_cycles);
        assert_eq!(per_worker.iter().sum::<u64>(), pr.stats.copied_bytes);
        assert_eq!(per_worker.len(), 4);
        // Same reachable values: walk both lists, compare payloads.
        for (&sa, &pa) in s_new.iter().zip(&p_new) {
            let (mut sa, mut pa) = (sa, pa);
            loop {
                assert_eq!(object::field(&sr.mem, sa, 2), object::field(&pr.mem, pa, 2));
                let s_shared = object::ptr_field(&sr.mem, sa, 1);
                let p_shared = object::ptr_field(&pr.mem, pa, 1);
                assert_eq!(object::field(&sr.mem, s_shared, 0), 99);
                assert_eq!(object::field(&pr.mem, p_shared, 0), 99);
                sa = object::ptr_field(&sr.mem, sa, 0);
                pa = object::ptr_field(&pr.mem, pa, 0);
                assert_eq!(sa.is_null(), pa.is_null());
                if sa.is_null() {
                    break;
                }
            }
        }
        // Live accounting matches the serial lane despite chunk slack.
        assert_eq!(sr.to.used_words(), pr.to.used_words());
        assert_eq!(
            pr.to.used_words() + pr.to.slack_words(),
            pr.to.frontier() - pr.to.start()
        );
    }

    #[test]
    fn packet_reorder_lane_reaches_the_same_heap() {
        let mut base = rig(4096);
        let b_heads = build_graph(&mut base, 150);
        let from_ranges = [base.from.range()];
        let mut ev = Evacuator::new(
            &mut base.mem,
            &from_ranges,
            &mut base.to,
            None,
            None,
            None,
            &mut base.stats,
            CostModel::default(),
        );
        ev.set_workers(3, true);
        let heads: Vec<Addr> = b_heads.iter().map(|&a| ev.forward(a)).collect();
        ev.drain();
        drop(ev);
        // The list still chains to its full length with intact payloads.
        let mut len = 0;
        let mut cur = *heads.last().unwrap();
        while !cur.is_null() {
            len += 1;
            cur = object::ptr_field(&base.mem, cur, 0);
        }
        assert_eq!(len, 150);
    }

    #[test]
    fn parallel_forward_field_locs_updates_old_fields() {
        let mut r = rig(4096);
        let child1 =
            object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(1), &[11], 0).unwrap();
        let child2 =
            object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(1), &[22], 0).unwrap();
        // "Old" owners live in to-space; their fields are SSB entries.
        let owner = object::alloc_record(
            &mut r.mem,
            &mut r.to,
            SiteId::new(2),
            &[u64::from(child1.raw()), u64::from(child2.raw())],
            0b11,
        )
        .unwrap();
        let from_ranges = [r.from.range()];
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            None,
            None,
            None,
            &mut r.stats,
            CostModel::default(),
        );
        ev.set_workers(2, false);
        // Duplicates on purpose: dedup must leave one writer per location.
        let mut locs = vec![
            object::field_addr(owner, 0),
            object::field_addr(owner, 1),
            object::field_addr(owner, 0),
            object::field_addr(owner, 1),
        ];
        ev.forward_field_locs(&mut locs);
        ev.drain();
        drop(ev);
        let new1 = object::ptr_field(&r.mem, owner, 0);
        let new2 = object::ptr_field(&r.mem, owner, 1);
        assert!(r.to.contains(new1) && r.to.contains(new2));
        assert_eq!(object::field(&r.mem, new1, 0), 11);
        assert_eq!(object::field(&r.mem, new2, 0), 22);
        assert_eq!(r.stats.copied_bytes, 2 * 16, "each child copied once");
    }

    #[test]
    fn parallel_lane_marks_and_scans_large_objects() {
        let mut mem = Memory::with_capacity_words(8192);
        let mut from = Space::new(mem.reserve(512).unwrap());
        let mut to = Space::new(mem.reserve(2048).unwrap());
        let mut los = LargeObjectSpace::new(mem.reserve(2048).unwrap());
        let mut stats = GcStats::default();
        let small = object::alloc_record(&mut mem, &mut from, SiteId::new(1), &[5], 0).unwrap();
        let big = los.alloc(301).unwrap();
        object::set_header(&mut mem, big, Header::ptr_array(300).unwrap());
        mem.set_site(big, SiteId::new(2));
        for i in 0..300 {
            object::set_field(&mut mem, big, i, 0);
        }
        object::set_field(&mut mem, big, 7, u64::from(small.raw()));
        los.begin_marking(&mut mem);
        let from_ranges = [from.range()];
        let mut ev = Evacuator::new(
            &mut mem,
            &from_ranges,
            &mut to,
            None,
            Some(&mut los),
            None,
            &mut stats,
            CostModel::default(),
        );
        ev.set_workers(4, false);
        assert_eq!(ev.forward(big), big, "large objects never move");
        ev.drain();
        drop(ev);
        let new_small = object::ptr_field(&mem, big, 7);
        assert!(to.contains(new_small));
        assert_eq!(object::field(&mem, new_small, 0), 5);
        assert_eq!(los.sweep(&mem).len(), 0, "marked large object survives");
    }

    #[test]
    fn profile_sees_promotions() {
        let mut r = rig(256);
        let a = object::alloc_record(&mut r.mem, &mut r.from, SiteId::new(4), &[1], 0).unwrap();
        let mut profile = HeapProfile::new();
        profile.on_alloc(a, SiteId::new(4), 16);
        let from_ranges = [r.from.range()];
        let nursery = Some(r.from.range());
        let mut ev = Evacuator::new(
            &mut r.mem,
            &from_ranges,
            &mut r.to,
            nursery,
            None,
            Some(&mut profile),
            &mut r.stats,
            CostModel::default(),
        );
        ev.forward(a);
        ev.drain();
        let row = profile.site(SiteId::new(4)).unwrap();
        assert_eq!(row.survived_first, 1);
        assert_eq!(row.copied_bytes, 16);
    }
}
