//! Collector configuration.
//!
//! A [`GcConfig`] is the input to the plan constructors
//! ([`SemispacePlan::new`](crate::SemispacePlan::new),
//! [`GenerationalPlan::new`](crate::GenerationalPlan::new),
//! [`PretenuringPlan::new`](crate::PretenuringPlan::new)) and to the
//! [`build_collector`](crate::build_collector) convenience wrapper,
//! which adjusts the marker/pretenure fields per
//! [`CollectorKind`](crate::CollectorKind) before delegating to them.

use std::collections::BTreeSet;

use tilgc_mem::SiteId;

/// How the collector places stack markers at each scan (§5, §7.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MarkerPolicy {
    /// No markers: every collection rescans the whole stack (the paper's
    /// "without stack markers" baseline).
    #[default]
    Disabled,
    /// Mark every n-th frame. The paper uses n = 25.
    EveryN(usize),
    /// Mark every n-th frame *and* the frame just below the top, so a
    /// stack that does not move at all between collections reuses
    /// everything but the active frame (a §7.1-style refinement).
    EveryNPlusTop(usize),
    /// Mark frames at exponentially growing distances below the top
    /// (top−2, top−4, top−8, ...): dense protection near the volatile top
    /// of the stack, sparse below — "better performance with fewer
    /// markers" for stacks that oscillate near the top.
    Exponential,
}

impl MarkerPolicy {
    /// The paper's configuration: markers every 25 frames.
    pub const PAPER: MarkerPolicy = MarkerPolicy::EveryN(25);

    /// Whether this policy places any markers at all.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, MarkerPolicy::Disabled)
    }

    /// The marker depths for a stack of `depth` frames.
    pub fn placements(&self, depth: usize) -> Vec<usize> {
        match *self {
            MarkerPolicy::Disabled => Vec::new(),
            MarkerPolicy::EveryN(n) => {
                assert!(n > 0, "marker interval must be positive");
                (n - 1..depth).step_by(n).collect()
            }
            MarkerPolicy::EveryNPlusTop(n) => {
                assert!(n > 0, "marker interval must be positive");
                let mut v: Vec<usize> = (n - 1..depth).step_by(n).collect();
                if depth >= 2 {
                    v.push(depth - 2);
                }
                v.sort_unstable();
                v.dedup();
                v
            }
            MarkerPolicy::Exponential => {
                let mut v = Vec::new();
                let mut gap = 2usize;
                while gap <= depth {
                    v.push(depth - gap);
                    gap = gap.saturating_mul(2);
                }
                v.reverse();
                v
            }
        }
    }
}

/// A pretenuring policy: the set of allocation sites whose objects go
/// straight to the tenured generation (§6), plus the §7.2 extensions.
///
/// Derived from heap profiles by `tilgc-profile` (sites with old% ≥ 80 in
/// the paper), or built by hand:
///
/// ```
/// use tilgc_core::PretenurePolicy;
/// use tilgc_mem::SiteId;
///
/// let mut policy = PretenurePolicy::new();
/// policy.add_site(SiteId::new(3));
/// policy.add_no_scan_site(SiteId::new(3));
/// assert!(policy.should_pretenure(SiteId::new(3)));
/// assert!(policy.is_no_scan(SiteId::new(3)));
/// assert!(!policy.should_pretenure(SiteId::new(4)));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PretenurePolicy {
    sites: BTreeSet<SiteId>,
    no_scan: BTreeSet<SiteId>,
    /// Group pretenured objects into per-site regions, enabling the
    /// specialized (cheaper) region scans of §7.2.
    pub group_by_site: bool,
}

impl PretenurePolicy {
    /// Creates an empty policy (nothing is pretenured).
    pub fn new() -> PretenurePolicy {
        PretenurePolicy::default()
    }

    /// Adds a site whose allocations are tenured at birth.
    pub fn add_site(&mut self, site: SiteId) {
        self.sites.insert(site);
    }

    /// Marks a pretenured site as *no-scan*: the §7.2 dataflow analysis
    /// showed its objects only ever reference pretenured objects, so the
    /// pretenured-region scan can skip them entirely.
    ///
    /// # Panics
    ///
    /// Panics if the site is not pretenured — no-scan only makes sense for
    /// pretenured sites.
    pub fn add_no_scan_site(&mut self, site: SiteId) {
        assert!(
            self.sites.contains(&site),
            "no-scan site {site} must be pretenured first"
        );
        self.no_scan.insert(site);
    }

    /// Removes a site from the policy (and from the no-scan set), so its
    /// future allocations go to the nursery again. Returns whether the
    /// site was pretenured. Used by the heap-pressure governor's demotion
    /// rung.
    pub fn remove_site(&mut self, site: SiteId) -> bool {
        self.no_scan.remove(&site);
        self.sites.remove(&site)
    }

    /// Whether allocations from `site` go straight to the tenured
    /// generation.
    pub fn should_pretenure(&self, site: SiteId) -> bool {
        self.sites.contains(&site)
    }

    /// Whether `site`'s pretenured objects may skip the region scan.
    pub fn is_no_scan(&self, site: SiteId) -> bool {
        self.no_scan.contains(&site)
    }

    /// Number of pretenured sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether no site is pretenured.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The pretenured sites, in id order.
    pub fn sites(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.sites.iter().copied()
    }
}

impl FromIterator<SiteId> for PretenurePolicy {
    fn from_iter<I: IntoIterator<Item = SiteId>>(iter: I) -> Self {
        PretenurePolicy {
            sites: iter.into_iter().collect(),
            ..Default::default()
        }
    }
}

/// Configuration shared by the collectors.
///
/// Defaults follow §2.1: 512 KB nursery (the secondary cache size, per
/// Tarditi–Diwan), semispace target liveness 0.10, tenured target liveness
/// 0.3, large arrays segregated into a mark-sweep space.
///
/// # Example
///
/// ```
/// use tilgc_core::{GcConfig, MarkerPolicy};
///
/// let config = GcConfig::new()
///     .heap_budget_bytes(8 << 20)
///     .nursery_bytes(64 << 10)
///     .marker_policy(MarkerPolicy::PAPER);
/// assert_eq!(config.nursery_bytes, 64 << 10);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct GcConfig {
    /// Total heap budget in bytes (the paper's `k * Min`).
    pub heap_budget_bytes: usize,
    /// Nursery size in bytes (≤ 512 KB in the paper; smaller "for
    /// benchmarking reasons").
    pub nursery_bytes: usize,
    /// Semispace resizing target liveness ratio (`r` = 0.10 in §2.1).
    pub semispace_target_liveness: f64,
    /// Tenured-generation resizing target liveness ratio (0.3 in §2.1).
    pub tenured_target_liveness: f64,
    /// Stack-marker placement policy.
    pub marker_policy: MarkerPolicy,
    /// Arrays at least this many bytes go to the mark-sweep large-object
    /// space instead of the nursery. 0 disables the space.
    pub large_object_bytes: usize,
    /// Gather a heap profile during the run (≈50–200 % slower in the
    /// paper; here it costs host time, not simulated time).
    pub profiling: bool,
    /// Pretenuring policy, if any.
    pub pretenure: Option<PretenurePolicy>,
    /// Online adaptive pretenuring: promote/demote allocation sites
    /// mid-run from an EWMA of observed per-site survival, with
    /// hysteresis bands and a cooldown (see the `adaptive` module).
    /// `None` — the default — keeps placement exactly as the static
    /// `pretenure` policy says for the whole run.
    pub adaptive: Option<crate::AdaptiveConfig>,
    /// §7.2 extension: objects must survive this many minor collections
    /// before being promoted to the tenured generation (age recorded in
    /// the header's counter bits). 0 — the paper's configuration —
    /// promotes every nursery survivor immediately.
    pub tenure_threshold: u8,
    /// §9 extension: adaptively prefer full (major) collections while the
    /// tenured generation keeps dying quickly — the regime where "a
    /// semispace collector can outperform a generational collector". The
    /// collector watches the reclaim ratio of recent major collections
    /// and, while it stays high, collects both generations together
    /// instead of paying promote-then-discard double copies.
    pub adaptive_major: bool,
    /// Number of parallel collection workers. 1 (the default) selects
    /// the deterministic serial lane — the oracle every golden is pinned
    /// to. Higher values fan tracing work out over a work-packet
    /// scheduler with per-worker copy allocators; collections that lack
    /// the to-space headroom the worker chunks need fall back to the
    /// serial lane (see `scheduler` module docs).
    pub workers: usize,
    /// Testing knob: permute work-packet execution order (and alternate
    /// which end of the shared queue workers drain) to flush hidden
    /// ordering assumptions. Used by the torture harness's
    /// packet-reorder injection; a correct scheduler produces identical
    /// reachable heaps regardless.
    pub packet_reorder: bool,
    /// Fault-injection knob: a deterministic single-shot worker fault
    /// (panic, stall, or packet drop) fired at a `(worker, packet)`
    /// coordinate of the parallel lanes. The collection must either
    /// complete via requeue or degrade to the serial path with the
    /// oracle's exact answer. `None` (the default) injects nothing.
    pub worker_fault: Option<crate::scheduler::WorkerFaultSpec>,
    /// Hung-worker watchdog: wall-clock milliseconds a worker may hold
    /// an in-flight packet before the coordinator marks it lost and
    /// requeues its work. `None` (the default) disables the watchdog,
    /// except that an armed stall fault forces it on with a default
    /// deadline. The deadline must comfortably exceed the worst-case
    /// per-packet time — a spurious firing keeps the heap correct
    /// (forwarding is idempotent) but can double-charge simulated
    /// cycles.
    pub watchdog_ms: Option<u64>,
    /// Per-worker, per-section simulated-cycle ceiling (the watchdog's
    /// deterministic half): a worker that exceeds it retires as lost
    /// and the rest of the section degrades to the serial path. `None`
    /// (the default) is unlimited.
    pub worker_cycle_budget: Option<u64>,
    /// Record time-to-safepoint: at each collection, the simulated
    /// cycles elapsed since the mutator's last safepoint poll. Purely
    /// observational — no simulated cycles are charged — so goldens are
    /// unchanged; disabled by default.
    pub track_ttsp: bool,
}

impl Default for GcConfig {
    fn default() -> GcConfig {
        GcConfig {
            heap_budget_bytes: 64 << 20,
            nursery_bytes: 512 << 10,
            semispace_target_liveness: 0.10,
            tenured_target_liveness: 0.30,
            marker_policy: MarkerPolicy::Disabled,
            large_object_bytes: 16 << 10,
            profiling: false,
            pretenure: None,
            adaptive: None,
            tenure_threshold: 0,
            adaptive_major: false,
            workers: 1,
            packet_reorder: false,
            worker_fault: None,
            watchdog_ms: None,
            worker_cycle_budget: None,
            track_ttsp: false,
        }
    }
}

impl GcConfig {
    /// Creates the default configuration.
    pub fn new() -> GcConfig {
        GcConfig::default()
    }

    /// Sets the total heap budget.
    #[must_use]
    pub fn heap_budget_bytes(mut self, bytes: usize) -> GcConfig {
        self.heap_budget_bytes = bytes;
        self
    }

    /// Sets the nursery size.
    #[must_use]
    pub fn nursery_bytes(mut self, bytes: usize) -> GcConfig {
        self.nursery_bytes = bytes;
        self
    }

    /// Sets the marker placement policy.
    #[must_use]
    pub fn marker_policy(mut self, policy: MarkerPolicy) -> GcConfig {
        self.marker_policy = policy;
        self
    }

    /// Sets the large-object threshold (0 disables the space).
    #[must_use]
    pub fn large_object_bytes(mut self, bytes: usize) -> GcConfig {
        self.large_object_bytes = bytes;
        self
    }

    /// Enables or disables heap profiling.
    #[must_use]
    pub fn profiling(mut self, on: bool) -> GcConfig {
        self.profiling = on;
        self
    }

    /// Installs a pretenuring policy.
    #[must_use]
    pub fn pretenure(mut self, policy: PretenurePolicy) -> GcConfig {
        self.pretenure = Some(policy);
        self
    }

    /// Enables online adaptive pretenuring with the given estimator
    /// configuration.
    #[must_use]
    pub fn adaptive(mut self, config: crate::AdaptiveConfig) -> GcConfig {
        self.adaptive = Some(config);
        self
    }

    /// Enables the adaptive major-collection strategy (§9 extension).
    #[must_use]
    pub fn adaptive_major(mut self, on: bool) -> GcConfig {
        self.adaptive_major = on;
        self
    }

    /// Sets the tenure threshold (§7.2 extension): survivors are copied
    /// back within the nursery system until they have survived this many
    /// minor collections. 0 promotes immediately (the paper's setup).
    #[must_use]
    pub fn tenure_threshold(mut self, age: u8) -> GcConfig {
        self.tenure_threshold = age;
        self
    }

    /// Sets the parallel worker count (1 = the deterministic serial
    /// lane).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 — there is always at least the serial lane.
    #[must_use]
    pub fn workers(mut self, n: usize) -> GcConfig {
        assert!(n > 0, "worker count must be positive");
        self.workers = n;
        self
    }

    /// Enables the packet-reorder testing knob.
    #[must_use]
    pub fn packet_reorder(mut self, on: bool) -> GcConfig {
        self.packet_reorder = on;
        self
    }

    /// Arms a single-shot worker fault (fault injection).
    #[must_use]
    pub fn worker_fault(mut self, fault: crate::scheduler::WorkerFaultSpec) -> GcConfig {
        self.worker_fault = Some(fault);
        self
    }

    /// Sets the hung-worker watchdog's wall-clock deadline.
    #[must_use]
    pub fn watchdog_ms(mut self, ms: u64) -> GcConfig {
        self.watchdog_ms = Some(ms);
        self
    }

    /// Sets the per-worker, per-section simulated-cycle budget.
    #[must_use]
    pub fn worker_cycle_budget(mut self, cycles: u64) -> GcConfig {
        self.worker_cycle_budget = Some(cycles);
        self
    }

    /// Enables time-to-safepoint tracking (observational only).
    #[must_use]
    pub fn track_ttsp(mut self, on: bool) -> GcConfig {
        self.track_ttsp = on;
        self
    }

    /// The heap budget in words.
    pub fn heap_budget_words(&self) -> usize {
        self.heap_budget_bytes / tilgc_mem::WORD_BYTES
    }

    /// The nursery size in words.
    pub fn nursery_words(&self) -> usize {
        self.nursery_bytes / tilgc_mem::WORD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_n_placements() {
        let p = MarkerPolicy::EveryN(25);
        assert_eq!(p.placements(100), vec![24, 49, 74, 99]);
        assert_eq!(p.placements(24), Vec::<usize>::new());
        assert_eq!(p.placements(25), vec![24]);
        assert!(!MarkerPolicy::Disabled.is_enabled());
        assert!(p.is_enabled());
    }

    #[test]
    fn every_n_plus_top_adds_near_top_marker() {
        let p = MarkerPolicy::EveryNPlusTop(25);
        assert_eq!(p.placements(100), vec![24, 49, 74, 98, 99]);
        assert_eq!(p.placements(1), Vec::<usize>::new());
        // No duplicate when the top-adjacent frame is already aligned.
        assert_eq!(p.placements(26), vec![24]);
    }

    #[test]
    fn exponential_is_dense_near_top() {
        let p = MarkerPolicy::Exponential;
        assert_eq!(p.placements(100), vec![36, 68, 84, 92, 96, 98]);
        assert_eq!(p.placements(2), vec![0]);
        assert_eq!(p.placements(0), Vec::<usize>::new());
    }

    #[test]
    fn pretenure_policy_membership() {
        let mut p = PretenurePolicy::new();
        assert!(p.is_empty());
        p.add_site(SiteId::new(9));
        assert!(p.should_pretenure(SiteId::new(9)));
        assert!(!p.is_no_scan(SiteId::new(9)));
        p.add_no_scan_site(SiteId::new(9));
        assert!(p.is_no_scan(SiteId::new(9)));
        assert_eq!(p.len(), 1);
        assert_eq!(p.sites().collect::<Vec<_>>(), vec![SiteId::new(9)]);
        assert!(p.remove_site(SiteId::new(9)));
        assert!(!p.should_pretenure(SiteId::new(9)));
        assert!(!p.is_no_scan(SiteId::new(9)));
        assert!(!p.remove_site(SiteId::new(9)), "already removed");
    }

    #[test]
    #[should_panic(expected = "must be pretenured first")]
    fn no_scan_requires_pretenured() {
        let mut p = PretenurePolicy::new();
        p.add_no_scan_site(SiteId::new(1));
    }

    #[test]
    fn policy_from_iterator() {
        let p: PretenurePolicy = [SiteId::new(1), SiteId::new(2)].into_iter().collect();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn config_builder_chains() {
        let c = GcConfig::new()
            .heap_budget_bytes(1 << 20)
            .nursery_bytes(1 << 14);
        assert_eq!(c.heap_budget_words(), (1 << 20) / 8);
        assert_eq!(c.nursery_words(), (1 << 14) / 8);
        assert_eq!(c.tenured_target_liveness, 0.30);
    }
}
