//! The semispace baseline plan (§2.1).
//!
//! One [`CopySpace`] is the whole heap: allocation bumps through the
//! active half, and a full collection evacuates survivors into the other
//! ([`CopySemantics::Evacuate`]). After each collection the heap is
//! resized toward the target liveness ratio `r = 0.10` ("if the liveness
//! ratio after a collection was r′, then the heap is resized by the
//! factor r′/r"), capped by the experiment's memory budget `k · Min`.
//!
//! §7.1 notes that generational *stack* collection is orthogonal to heap
//! generations, so this plan too accepts a [`MarkerPolicy`] — the
//! ablation benches compare semispace collection with and without scan
//! caching.

use std::time::Instant;

use tilgc_mem::{Addr, BudgetSnapshot, GcError, Memory, Space};
use tilgc_obs::{
    CollectionBegin, DegradationBegin, DegradationEnd, Event, GcPhase, HeapCensus, PhaseTimer,
    SpaceCensus, TelemetryAcc,
};
use tilgc_runtime::{
    AllocShape, CollectReason, CollectionInspection, GcStats, HeapProfile, MutatorState,
};

use crate::config::{GcConfig, MarkerPolicy};
use crate::evac::{poison_range, sweep_profile_deaths, Evacuator};
use crate::governor::{PressureRung, PressureSession};
use crate::plan::Plan;
use crate::roots::{append_cached_roots, scan_stack, ScanCache};
use crate::scheduler::WorkerFaultSpec;
use crate::space::{CopySemantics, CopySpace};
use crate::util::{alloc_in_space, build_collection_end, build_inspection, reason_str};

/// The semispace (Fenichel–Yochelson/Cheney) plan.
pub struct SemispacePlan {
    mem: Memory,
    heap: CopySpace,
    budget_words: usize,
    target_liveness: f64,
    marker_policy: MarkerPolicy,
    cache: Option<ScanCache>,
    profile: Option<HeapProfile>,
    stats: GcStats,
    inspection: Option<CollectionInspection>,
    /// Telemetry accumulator, allocated lazily the first time a
    /// collection or allocation runs with an enabled recorder installed.
    telem: Option<TelemetryAcc>,
    workers: usize,
    packet_reorder: bool,
    /// Injected worker fault, armed until its one shot fires (the spec
    /// is per-run, not per-collection).
    worker_fault: Option<WorkerFaultSpec>,
    fault_fired: bool,
    watchdog_ms: Option<u64>,
    worker_cycle_budget: Option<u64>,
    track_ttsp: bool,
}

impl SemispacePlan {
    /// Creates a semispace plan within `config.heap_budget_bytes` of
    /// total memory (each semispace gets half).
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small to hold even two one-kilobyte
    /// semispaces.
    pub fn new(config: &GcConfig) -> SemispacePlan {
        let budget_words = config.heap_budget_words();
        let semi = budget_words / 2;
        assert!(
            semi >= 128,
            "semispace budget too small: {} bytes",
            config.heap_budget_bytes
        );
        let mut mem = Memory::with_capacity_words(budget_words + 16);
        let a = Space::new(
            mem.reserve_owned(semi, "semispace")
                .expect("semispace reservation"),
        );
        let b = Space::new(
            mem.reserve_owned(semi, "semispace")
                .expect("semispace reservation"),
        );
        SemispacePlan {
            mem,
            heap: CopySpace::new("semispace", CopySemantics::Evacuate, a, b),
            budget_words,
            target_liveness: config.semispace_target_liveness,
            marker_policy: config.marker_policy,
            cache: config.marker_policy.is_enabled().then(ScanCache::default),
            profile: config.profiling.then(HeapProfile::new),
            stats: GcStats::default(),
            inspection: None,
            telem: None,
            workers: config.workers,
            packet_reorder: config.packet_reorder,
            worker_fault: config.worker_fault,
            fault_fired: false,
            watchdog_ms: config.watchdog_ms,
            worker_cycle_budget: config.worker_cycle_budget,
            track_ttsp: config.track_ttsp,
        }
    }

    /// Capacity of one semispace right now, in words.
    pub fn semispace_words(&self) -> usize {
        self.heap.active().capacity_words()
    }

    /// Whether `words` fit in the active half right now. Consumes one
    /// forced-failure token first, so fault injection fails each
    /// *attempt* (not each logical allocation) and exercises the ladder.
    fn attempt_fits(&self, m: &mut MutatorState, words: usize) -> bool {
        !m.consume_forced_failure() && self.heap.active().fits(words)
    }

    fn budget_snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            budget_words: self.budget_words,
            free_words: self.heap.active().free_words(),
            live_words: self.heap.active().used_words(),
        }
    }

    /// Bump-allocates into the active half (which was checked to fit)
    /// and records the allocation in the heap profile.
    fn finish_alloc(&mut self, m: &mut MutatorState, shape: AllocShape) -> Addr {
        let buf = std::mem::take(&mut m.alloc_buf);
        let addr = alloc_in_space(&mut self.mem, self.heap.active_mut(), shape, &buf)
            .expect("space was checked to fit");
        m.alloc_buf = buf;
        if let Some(p) = self.profile.as_mut() {
            p.on_alloc(addr, shape.site(), shape.size_bytes());
        }
        addr
    }

    fn do_collect(&mut self, m: &mut MutatorState, reason: &'static str) {
        let wall_start = Instant::now();
        let stats_before = self.stats;
        let side_cleared_before = self.mem.side_cleared_words();
        let depth_at_gc = m.stack.depth();
        // TTSP is read before any GC work so the distance reflects the
        // mutator's position when the collection took over.
        let ttsp_cycles = if self.track_ttsp {
            m.cycles_since_safepoint()
        } else {
            0
        };
        let mut timer = None;
        if m.recorder.is_enabled() {
            self.telem
                .get_or_insert_with(TelemetryAcc::default)
                .note_depth(depth_at_gc as u64);
            m.recorder.record(Event::CollectionBegin(CollectionBegin {
                collection: self.stats.collections + 1,
                plan: "semispace",
                reason,
                // Every semispace collection traces the whole heap.
                major: true,
                depth: depth_at_gc as u64,
                start_cycles: m.stats.client_cycles + self.stats.gc_cycles(),
                ttsp_cycles,
            }));
            timer = Some(PhaseTimer::start(self.stats.gc_cycles()));
        }
        self.stats.collections += 1;
        self.stats.depth_at_gc_sum += depth_at_gc as u64;
        self.stats.other_cycles += m.cost.gc_base;
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::Setup, self.stats.gc_cycles());
        }

        // --- root processing (GC-stack) ---
        let stack_t0 = Instant::now();
        let outcome = scan_stack(m, self.cache.as_mut(), self.marker_policy, &mut self.stats);
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::StackDecode, self.stats.gc_cycles());
        }
        let scan_claim = (outcome.claimed_prefix, outcome.oracle_prefix);
        // Every collection moves everything, so cached frames' roots must
        // be processed too — the cache saves only the decode cost.
        let mut roots = outcome.new_roots;
        append_cached_roots(self.cache.as_ref(), outcome.reused_frames, &mut roots);

        let from_range = self.heap.active().range();
        let from_frontier = self.heap.active().frontier();
        let from_used = from_frontier - from_range.start;
        let from_ranges = [from_range];
        let to_space = self.heap.inactive_mut();
        to_space.set_limit_words(to_space.max_capacity_words());
        // Parallel lane needs headroom for abandoned chunk tails; tight
        // heaps and profiling runs fall back to the serial oracle.
        let parallel = self.workers > 1
            && self.profile.is_none()
            && to_space.free_words()
                >= from_used + crate::scheduler::slack_budget_words(self.workers);
        let mut evac = Evacuator::new(
            &mut self.mem,
            &from_ranges,
            to_space,
            None,
            None,
            self.profile.as_mut(),
            &mut self.stats,
            m.cost,
        );
        if let Some(t) = self.telem.as_mut().filter(|_| timer.is_some()) {
            evac.set_telemetry(t);
        }
        if parallel {
            evac.set_workers(self.workers, self.packet_reorder);
            if !self.fault_fired {
                evac.set_worker_fault(self.worker_fault);
            }
            evac.set_watchdog_ms(self.watchdog_ms);
            evac.set_cycle_budget(self.worker_cycle_budget);
        }
        evac.forward_roots(m, &roots);
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::RootScan, evac.current_gc_cycles());
        }
        let stack_ns = stack_t0.elapsed().as_nanos() as u64;

        // --- copying (GC-copy) ---
        let copy_t0 = Instant::now();
        evac.drain();
        if let Some(t) = timer.as_mut() {
            t.mark(GcPhase::CheneyCopy, evac.current_gc_cycles());
        }
        let copy_ns = copy_t0.elapsed().as_nanos() as u64;
        let workers_used = if evac.parallel() {
            self.workers as u64
        } else {
            1
        };
        let worker_copied = evac.worker_copied().to_vec();
        let fault_fired = evac.fault_fired();
        let workers_lost = evac.workers_lost();
        let degraded = evac.degraded();
        let degrade_trigger = evac.degrade_trigger();
        let leftover_packets = evac.leftover_packets();

        // A semispace plan needs no write barrier; discard anything an
        // embedder recorded anyway.
        m.barrier.drain(|_| {});

        sweep_profile_deaths(
            &self.mem,
            self.profile.as_mut(),
            from_range.start,
            from_frontier,
        );
        poison_range(&mut self.mem, from_range, from_frontier);
        // The vacated half drops any barrier dirty bits an embedder set
        // in one word sweep (the plan itself records none).
        self.mem.bulk_clear_dirty(from_range);
        self.heap.active_mut().reset();
        self.heap.flip();
        let live_words = self.heap.active().used_words();

        // Resize toward the target liveness ratio, within the budget.
        let desired = (live_words as f64 / self.target_liveness) as usize;
        let cap = self.budget_words / 2;
        let new_size = desired.clamp((live_words + 512).min(cap), cap);
        self.heap.set_limit_words(new_size);

        if fault_fired {
            self.fault_fired = true;
        }
        self.stats.workers_lost += workers_lost;
        self.stats.degraded_collections += u64::from(degraded);
        self.stats
            .note_live_bytes(tilgc_mem::words_to_bytes(live_words) as u64);
        self.stats.stack_wall_ns += stack_ns;
        self.stats.copy_wall_ns += copy_ns;
        let total_ns = wall_start.elapsed().as_nanos() as u64;
        self.stats.total_wall_ns += total_ns;
        crate::verify::check_worker_accounting(
            workers_used,
            &worker_copied,
            self.stats.copied_bytes - stats_before.copied_bytes,
        );
        // A semispace collection traces the whole heap.
        self.inspection = Some(build_inspection(
            &stats_before,
            &self.stats,
            true,
            depth_at_gc,
            true,
            scan_claim,
        ));
        if let Some(timer) = timer {
            let collection = self.stats.collections;
            for e in timer.into_events(collection) {
                m.recorder.record(e);
            }
            let telem = self.telem.as_mut().expect("allocated when recording");
            let insp = self.inspection.as_ref().expect("just built");
            let end_cycles = m.stats.client_cycles + self.stats.gc_cycles();
            m.recorder
                .record(Event::CollectionEnd(Box::new(build_collection_end(
                    &stats_before,
                    &self.stats,
                    insp,
                    telem,
                    end_cycles,
                    total_ns,
                    workers_used,
                    worker_copied,
                    self.mem.owned_chunks() as u64,
                    self.mem.side_cleared_words() - side_cleared_before,
                ))));
            // A degradation episode brackets right behind the end event,
            // like a census: the affected collection has already closed
            // with the exact serial answer.
            if degraded {
                m.recorder.record(Event::DegradationBegin(DegradationBegin {
                    collection,
                    trigger: degrade_trigger.unwrap_or("orphan"),
                    workers: workers_used,
                    workers_lost,
                }));
                m.recorder.record(Event::DegradationEnd(DegradationEnd {
                    collection,
                    leftover_packets,
                    outcome: "drained",
                }));
            }
            // Census behind the end event: one row for the single copy
            // space. Host-side reads only — no simulated cycles.
            m.recorder.record(Event::HeapCensus(HeapCensus {
                collection,
                pretenured_sites: 0,
                spaces: vec![SpaceCensus {
                    space: "semispace",
                    used_words: self.heap.active().used_words() as u64,
                    reserved_words: self.heap.active().capacity_words() as u64,
                    chunks: self.mem.owned_chunks_by("semispace") as u64,
                }],
            }));
            for e in telem.drain_samples(collection) {
                m.recorder.record(e);
            }
        }
    }
}

impl Plan for SemispacePlan {
    fn name(&self) -> &'static str {
        "semispace"
    }

    fn memory(&self) -> &Memory {
        &self.mem
    }

    fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    fn alloc(&mut self, m: &mut MutatorState, shape: AllocShape) -> Result<Addr, GcError> {
        let words = shape.size_words();
        if m.recorder.is_enabled() {
            self.telem
                .get_or_insert_with(TelemetryAcc::default)
                .note_alloc(shape.site().get(), shape.size_bytes() as u64);
        }
        if self.attempt_fits(m, words) {
            return Ok(self.finish_alloc(m, shape));
        }
        // Ordinary slow path: one collection, no pressure episode yet.
        self.do_collect(m, "alloc-failure");
        if self.attempt_fits(m, words) {
            return Ok(self.finish_alloc(m, shape));
        }
        // The slow path failed: open a pressure episode and climb the
        // ladder. A single-space plan has only the retry-major rung.
        let mut session = PressureSession::begin(
            m,
            &mut self.stats,
            shape.site().get(),
            words as u64,
            "tenured",
        );
        let charged = session.charge(m, &mut self.stats, PressureRung::RetryMajor);
        self.do_collect(m, "alloc-failure");
        if self.attempt_fits(m, words) {
            session.emit_rung(m, PressureRung::RetryMajor, "recovered", charged);
            session.finish(m, "recovered");
            return Ok(self.finish_alloc(m, shape));
        }
        session.emit_rung(m, PressureRung::RetryMajor, "escalated", charged);
        session.finish(m, "exhausted");
        // The semispace plan's single heap plays the tenured role.
        Err(GcError::TenuredExhausted {
            kind: shape.kind(),
            requested_words: words,
            budget: self.budget_snapshot(),
        })
    }

    fn collect(&mut self, m: &mut MutatorState, reason: CollectReason) {
        self.do_collect(m, reason_str(reason));
    }

    fn gc_stats(&self) -> &GcStats {
        &self.stats
    }

    fn finish(&mut self, _m: &mut MutatorState) {
        if let Some(p) = self.profile.as_mut() {
            p.finish();
        }
    }

    fn take_profile(&mut self) -> Option<HeapProfile> {
        self.profile.take()
    }

    fn last_inspection(&self) -> Option<&CollectionInspection> {
        self.inspection.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_runtime::{FrameDesc, Trace, Value, Vm};

    fn vm(budget: usize) -> Vm {
        let config = GcConfig::new().heap_budget_bytes(budget);
        let mut m = MutatorState::new();
        m.barrier = tilgc_runtime::WriteBarrier::None;
        Vm::with_mutator(m, SemispacePlan::new(&config).into_collector())
    }

    #[test]
    fn allocation_triggers_collection_and_survivors_live() {
        let mut vm = vm(16 << 10); // 16 KB budget → two 8 KB semispaces
        let site = vm.site("t::rec");
        let d = vm.register_frame(FrameDesc::new("t").slot(Trace::Pointer));
        vm.push_frame(d);
        let first = vm
            .alloc_record(site, &[Value::Int(41), Value::Int(42)])
            .unwrap();
        vm.set_slot(0, Value::Ptr(first));
        // Allocate enough garbage to force several collections.
        for i in 0..2000 {
            let _ = vm.alloc_record(site, &[Value::Int(i), Value::Int(i)]);
        }
        let collections = vm.gc_stats().collections;
        assert!(collections > 0);
        let root = vm.slot_ptr(0);
        if collections % 2 == 1 {
            // After an odd number of flips the survivor is in the other
            // semispace; after an even number it may be back at the same
            // address.
            assert_ne!(root, first, "the root was relocated");
        }
        let v = vm.load_int(root, 1);
        assert_eq!(v, 42, "survivor data intact after collections");
    }

    #[test]
    fn collections_preserve_linked_structures() {
        let mut vm = vm(64 << 10);
        let site = vm.site("t::cons");
        let d = vm.register_frame(FrameDesc::new("t").slot(Trace::Pointer));
        vm.push_frame(d);
        // Build a 50-cell list rooted in slot 0, interleaved with garbage.
        vm.set_slot(0, Value::NULL);
        for i in 0..50 {
            let tail = vm.slot_ptr(0);
            let cell = vm
                .alloc_record(site, &[Value::Int(i), Value::Ptr(tail)])
                .unwrap();
            vm.set_slot(0, Value::Ptr(cell));
            for _ in 0..100 {
                let _ = vm.alloc_record(site, &[Value::Int(0), Value::NULL]);
            }
        }
        assert!(vm.gc_stats().collections > 1);
        // Walk the list: 49, 48, ..., 0.
        let mut cur = vm.slot_ptr(0);
        for expect in (0..50).rev() {
            assert_eq!(vm.load_int(cur, 0), expect);
            cur = vm.load_ptr(cur, 1);
        }
        assert!(cur.is_null());
    }

    #[test]
    fn budget_exhaustion_is_a_typed_error() {
        let mut vm = vm(8 << 10);
        let site = vm.site("t::keep");
        let d = vm.register_frame(FrameDesc::new("t").slot(Trace::Pointer));
        vm.push_frame(d);
        // Retain an ever-growing list until the budget bursts.
        vm.set_slot(0, Value::NULL);
        let overflow = loop {
            let tail = vm.slot_ptr(0);
            match vm.alloc_ptr_array(site, 16, tail) {
                Ok(cell) => vm.set_slot(0, Value::Ptr(cell)),
                Err(overflow) => break overflow,
            }
        };
        // No handler was installed, so the raise went uncaught.
        assert!(matches!(
            overflow.outcome,
            tilgc_runtime::RaiseOutcome::Uncaught
        ));
        let err = overflow.error;
        assert_eq!(err.kind(), tilgc_mem::AllocKind::PtrArray);
        assert_eq!(err.space(), "tenured");
        assert!(err.requested_words() >= 16);
        let budget = err.budget();
        assert_eq!(budget.budget_words, (8 << 10) / 8);
        assert!(budget.live_words <= budget.budget_words);
        let msg = err.to_string();
        assert!(msg.contains("tenured space exhausted"), "got: {msg}");
        // The heap stays usable after the failed allocation.
        vm.set_slot(0, Value::NULL);
        vm.gc_now();
        assert!(vm.alloc_record(site, &[Value::Int(1)]).is_ok());
    }

    #[test]
    fn resizing_respects_budget_cap() {
        let config = GcConfig::new().heap_budget_bytes(32 << 10);
        let c = SemispacePlan::new(&config);
        assert_eq!(c.semispace_words(), (32 << 10) / 8 / 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut vm = vm(16 << 10);
        let site = vm.site("t::x");
        for _ in 0..5000 {
            let _ = vm.alloc_record(site, &[Value::Int(1)]);
        }
        let s = vm.gc_stats();
        assert!(s.collections >= 2);
        assert!(s.gc_cycles() > 0);
        assert_eq!(s.major_collections, 0);
        assert!(vm.mutator_stats().alloc_bytes >= 5000 * 16);
    }

    #[test]
    fn profiling_semispace_records_sites() {
        let config = GcConfig::new().heap_budget_bytes(16 << 10).profiling(true);
        let mut m = MutatorState::new();
        m.barrier = tilgc_runtime::WriteBarrier::None;
        let mut vm = Vm::with_mutator(m, SemispacePlan::new(&config).into_collector());
        let site = vm.site("t::p");
        for _ in 0..2000 {
            let _ = vm.alloc_record(site, &[Value::Int(1)]);
        }
        vm.finish();
        let profile = vm.take_profile().expect("profiling was enabled");
        let row = profile.site(site).expect("site seen");
        assert_eq!(row.alloc_objects, 2000);
        assert_eq!(row.old_percent(), 0.0, "all garbage died young");
    }
}
