//! The semispace baseline collector (§2.1).
//!
//! Two equal semispaces; allocation bumps through the active one, and a
//! full Cheney collection evacuates survivors into the other. After each
//! collection the heap is resized toward the target liveness ratio
//! `r = 0.10` ("if the liveness ratio after a collection was r′, then the
//! heap is resized by the factor r′/r"), capped by the experiment's memory
//! budget `k · Min`.
//!
//! §7.1 notes that generational *stack* collection is orthogonal to heap
//! generations, so this collector too accepts a [`MarkerPolicy`] — the
//! ablation benches compare semispace collection with and without scan
//! caching.

use std::time::Instant;

use tilgc_mem::{Addr, Memory, Space};
use tilgc_runtime::{AllocShape, CollectReason, Collector, GcStats, HeapProfile, MutatorState};

use crate::config::{GcConfig, MarkerPolicy};
use crate::evac::{poison_range, Evacuator};
use crate::roots::{read_root, scan_stack, write_root, RootLoc, ScanCache};
use crate::util::alloc_in_space;

/// The semispace (Fenichel–Yochelson/Cheney) collector.
pub struct SemispaceCollector {
    mem: Memory,
    spaces: [Space; 2],
    active: usize,
    budget_words: usize,
    target_liveness: f64,
    marker_policy: MarkerPolicy,
    cache: Option<ScanCache>,
    profile: Option<HeapProfile>,
    stats: GcStats,
}

impl SemispaceCollector {
    /// Creates a semispace collector within `config.heap_budget_bytes` of
    /// total memory (each semispace gets half).
    ///
    /// # Panics
    ///
    /// Panics if the budget is too small to hold even two one-kilobyte
    /// semispaces.
    pub fn new(config: &GcConfig) -> SemispaceCollector {
        let budget_words = config.heap_budget_words();
        let semi = budget_words / 2;
        assert!(
            semi >= 128,
            "semispace budget too small: {} bytes",
            config.heap_budget_bytes
        );
        let mut mem = Memory::with_capacity_words(budget_words + 16);
        let a = Space::new(mem.reserve(semi).expect("semispace reservation"));
        let b = Space::new(mem.reserve(semi).expect("semispace reservation"));
        SemispaceCollector {
            mem,
            spaces: [a, b],
            active: 0,
            budget_words,
            target_liveness: config.semispace_target_liveness,
            marker_policy: config.marker_policy,
            cache: config.marker_policy.is_enabled().then(ScanCache::default),
            profile: config.profiling.then(HeapProfile::new),
            stats: GcStats::default(),
        }
    }

    /// Capacity of one semispace right now, in words.
    pub fn semispace_words(&self) -> usize {
        self.spaces[self.active].capacity_words()
    }

    fn do_collect(&mut self, m: &mut MutatorState) {
        let wall_start = Instant::now();
        self.stats.collections += 1;
        self.stats.depth_at_gc_sum += m.stack.depth() as u64;
        self.stats.other_cycles += m.cost.gc_base;

        // --- root processing (GC-stack) ---
        let stack_t0 = Instant::now();
        let outcome = scan_stack(m, self.cache.as_mut(), self.marker_policy, &mut self.stats);
        // Every collection moves everything, so cached frames' roots must
        // be processed too — the cache saves only the decode cost.
        let mut roots: Vec<RootLoc> = outcome.new_roots;
        if let Some(cache) = &self.cache {
            for (d, info) in cache.frames.iter().enumerate().take(outcome.reused_frames) {
                for &slot in info.ptr_slots.iter() {
                    roots.push(RootLoc::Slot {
                        depth: d as u32,
                        slot,
                    });
                }
            }
        }

        let (from_i, to_i) = (self.active, 1 - self.active);
        let from_frontier = self.spaces[from_i].frontier();
        let from_ranges = [self.spaces[from_i].range()];
        let (lo, hi) = self.spaces.split_at_mut(1);
        let to_space = if to_i == 1 { &mut hi[0] } else { &mut lo[0] };
        to_space.set_limit_words(to_space.max_capacity_words());
        let mut evac = Evacuator::new(
            &mut self.mem,
            &from_ranges,
            to_space,
            None,
            None,
            self.profile.as_mut(),
            &mut self.stats,
            m.cost,
        );
        let mut relocated: u64 = 0;
        for &loc in &roots {
            let word = read_root(m, loc);
            let fwd = evac.forward_word(word);
            if fwd != word {
                write_root(m, loc, fwd);
                relocated += 1;
            }
        }
        let stack_ns = stack_t0.elapsed().as_nanos() as u64;

        // --- copying (GC-copy) ---
        let copy_t0 = Instant::now();
        evac.drain();
        let copy_ns = copy_t0.elapsed().as_nanos() as u64;
        self.stats.roots_found += roots.len() as u64;
        self.stats.stack_cycles +=
            m.cost.root_check * roots.len() as u64 + m.cost.root_process * relocated;

        // A semispace collector needs no write barrier; discard anything
        // an embedder recorded anyway.
        m.barrier.drain(|_| {});

        if let Some(p) = self.profile.as_mut() {
            for entry in tilgc_mem::object::walk(&self.mem, from_ranges[0].start, from_frontier) {
                if entry.forwarded.is_none() {
                    p.on_death(entry.addr);
                }
            }
        }

        poison_range(&mut self.mem, from_ranges[0], from_frontier);
        self.spaces[from_i].reset();
        let live_words = self.spaces[to_i].used_words();
        self.active = to_i;

        // Resize toward the target liveness ratio, within the budget.
        let desired = (live_words as f64 / self.target_liveness) as usize;
        let cap = self.budget_words / 2;
        let new_size = desired.clamp((live_words + 512).min(cap), cap);
        self.spaces[0].set_limit_words(new_size);
        self.spaces[1].set_limit_words(new_size);

        self.stats
            .note_live_bytes(tilgc_mem::words_to_bytes(live_words) as u64);
        self.stats.stack_wall_ns += stack_ns;
        self.stats.copy_wall_ns += copy_ns;
        self.stats.total_wall_ns += wall_start.elapsed().as_nanos() as u64;
    }
}

impl Collector for SemispaceCollector {
    fn name(&self) -> &'static str {
        "semispace"
    }

    fn memory(&self) -> &Memory {
        &self.mem
    }

    fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    fn alloc(&mut self, m: &mut MutatorState, shape: AllocShape) -> Addr {
        let words = shape.size_words();
        if !self.spaces[self.active].fits(words) {
            self.do_collect(m);
            assert!(
                self.spaces[self.active].fits(words),
                "out of memory: {} words requested, {} free after collection (budget {} words)",
                words,
                self.spaces[self.active].free_words(),
                self.budget_words
            );
        }
        let buf = std::mem::take(&mut m.alloc_buf);
        let addr = alloc_in_space(&mut self.mem, &mut self.spaces[self.active], shape, &buf)
            .expect("space was checked to fit");
        m.alloc_buf = buf;
        if let Some(p) = self.profile.as_mut() {
            p.on_alloc(addr, shape.site(), shape.size_bytes());
        }
        addr
    }

    fn collect(&mut self, m: &mut MutatorState, _reason: CollectReason) {
        self.do_collect(m);
    }

    fn gc_stats(&self) -> &GcStats {
        &self.stats
    }

    fn finish(&mut self, _m: &mut MutatorState) {
        if let Some(p) = self.profile.as_mut() {
            p.finish();
        }
    }

    fn take_profile(&mut self) -> Option<HeapProfile> {
        self.profile.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilgc_runtime::{FrameDesc, Trace, Value, Vm};

    fn vm(budget: usize) -> Vm {
        let config = GcConfig::new().heap_budget_bytes(budget);
        let mut m = MutatorState::new();
        m.barrier = tilgc_runtime::WriteBarrier::None;
        Vm::with_mutator(m, Box::new(SemispaceCollector::new(&config)))
    }

    #[test]
    fn allocation_triggers_collection_and_survivors_live() {
        let mut vm = vm(16 << 10); // 16 KB budget → two 8 KB semispaces
        let site = vm.site("t::rec");
        let d = vm.register_frame(FrameDesc::new("t").slot(Trace::Pointer));
        vm.push_frame(d);
        let first = vm.alloc_record(site, &[Value::Int(41), Value::Int(42)]);
        vm.set_slot(0, Value::Ptr(first));
        // Allocate enough garbage to force several collections.
        for i in 0..2000 {
            let _ = vm.alloc_record(site, &[Value::Int(i), Value::Int(i)]);
        }
        let collections = vm.gc_stats().collections;
        assert!(collections > 0);
        let root = vm.slot_ptr(0);
        if collections % 2 == 1 {
            // After an odd number of flips the survivor is in the other
            // semispace; after an even number it may be back at the same
            // address.
            assert_ne!(root, first, "the root was relocated");
        }
        let v = vm.load_int(root, 1);
        assert_eq!(v, 42, "survivor data intact after collections");
    }

    #[test]
    fn collections_preserve_linked_structures() {
        let mut vm = vm(64 << 10);
        let site = vm.site("t::cons");
        let d = vm.register_frame(FrameDesc::new("t").slot(Trace::Pointer));
        vm.push_frame(d);
        // Build a 50-cell list rooted in slot 0, interleaved with garbage.
        vm.set_slot(0, Value::NULL);
        for i in 0..50 {
            let tail = vm.slot_ptr(0);
            let cell = vm.alloc_record(site, &[Value::Int(i), Value::Ptr(tail)]);
            vm.set_slot(0, Value::Ptr(cell));
            for _ in 0..100 {
                let _ = vm.alloc_record(site, &[Value::Int(0), Value::NULL]);
            }
        }
        assert!(vm.gc_stats().collections > 1);
        // Walk the list: 49, 48, ..., 0.
        let mut cur = vm.slot_ptr(0);
        for expect in (0..50).rev() {
            assert_eq!(vm.load_int(cur, 0), expect);
            cur = vm.load_ptr(cur, 1);
        }
        assert!(cur.is_null());
    }

    #[test]
    #[should_panic(expected = "out of memory")]
    fn budget_exhaustion_panics() {
        let mut vm = vm(8 << 10);
        let site = vm.site("t::keep");
        let d = vm.register_frame(FrameDesc::new("t").slot(Trace::Pointer));
        vm.push_frame(d);
        // Retain an ever-growing list until the budget bursts.
        vm.set_slot(0, Value::NULL);
        loop {
            let tail = vm.slot_ptr(0);
            let cell = vm.alloc_ptr_array(site, 16, tail);
            vm.set_slot(0, Value::Ptr(cell));
        }
    }

    #[test]
    fn resizing_respects_budget_cap() {
        let config = GcConfig::new().heap_budget_bytes(32 << 10);
        let c = SemispaceCollector::new(&config);
        assert_eq!(c.semispace_words(), (32 << 10) / 8 / 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut vm = vm(16 << 10);
        let site = vm.site("t::x");
        for _ in 0..5000 {
            let _ = vm.alloc_record(site, &[Value::Int(1)]);
        }
        let s = vm.gc_stats();
        assert!(s.collections >= 2);
        assert!(s.gc_cycles() > 0);
        assert_eq!(s.major_collections, 0);
        assert!(vm.mutator_stats().alloc_bytes >= 5000 * 16);
    }

    #[test]
    fn profiling_semispace_records_sites() {
        let config = GcConfig::new().heap_budget_bytes(16 << 10).profiling(true);
        let mut m = MutatorState::new();
        m.barrier = tilgc_runtime::WriteBarrier::None;
        let mut vm = Vm::with_mutator(m, Box::new(SemispaceCollector::new(&config)));
        let site = vm.site("t::p");
        for _ in 0..2000 {
            let _ = vm.alloc_record(site, &[Value::Int(1)]);
        }
        vm.finish();
        let profile = vm.take_profile().expect("profiling was enabled");
        let row = profile.site(site).expect("site seen");
        assert_eq!(row.alloc_objects, 2000);
        assert_eq!(row.old_percent(), 0.0, "all garbage died young");
    }
}
