//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim implements exactly the API subset the workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, `any`,
//! integer-range and tuple strategies, [`strategy::Just`],
//! [`collection::vec`], the `prop_oneof!`/`prop_assert!` macros and
//! [`test_runner::ProptestConfig`].
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases
//! (seeded per test name, splitmix64). The `PROPTEST_CASES` environment
//! variable overrides every test's configured case count, mirroring real
//! proptest — the nightly CI tier uses it to deepen the sweep. There is
//! no shrinking — a failing case panics with the generated inputs'
//! `Debug` rendering, which is enough to reproduce since generation is
//! deterministic.

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bound reduction; bias is irrelevant for tests.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// Resolves the case count for one test run: the `PROPTEST_CASES`
/// environment variable (real proptest's global override) beats the
/// per-test configuration when set.
///
/// # Panics
///
/// Panics if `PROPTEST_CASES` is set but is not a positive integer — a
/// CI job that typos the variable must fail, not silently run the
/// default depth.
pub fn resolved_cases(config_cases: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => panic!("PROPTEST_CASES must be a positive integer, got {v:?}"),
        },
        Err(_) => config_cases,
    }
}

/// FNV-1a, used to derive a per-test seed from the test name.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A value generator. The only requirement in this shim is the ability to
/// produce one value per invocation from the deterministic RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!` to mix arm types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V> {
    gen: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Leaf strategies.
pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union over type-erased arms (built by `prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    /// Builds a weighted union strategy.
    pub fn one_of<V>(arms: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        OneOf { arms, total }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, arm) in &self.arms {
                if pick < u64::from(*w) {
                    return arm.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weights summed correctly")
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Subset of proptest's config: only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking in the shim).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Just;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, Strategy};
}

/// Defines property tests over deterministic pseudo-random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg); $($rest)*);
    };
    (@with_cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..$crate::resolved_cases(config.cases) {
                let mut rng = $crate::TestRng::new(seed ^ (u64::from(case) << 32));
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Weighted (or unweighted) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $(($weight as u32, $crate::Strategy::boxed($arm)),)+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $((1u32, $crate::Strategy::boxed($arm)),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Pick {
        A(u8),
        B,
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_honoured(v in crate::collection::vec(any::<u16>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(p in prop_oneof![
            3 => (0u8..7).prop_map(Pick::A),
            1 => Just(Pick::B),
        ]) {
            match p {
                Pick::A(n) => prop_assert!(n < 7),
                Pick::B => {}
            }
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
