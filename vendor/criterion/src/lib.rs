//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the API subset the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`bench_function`/`bench_with_input`/
//! `finish`, `Bencher::iter`, `BenchmarkId`, and the `criterion_group!`/
//! `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed for
//! `sample_size` samples of an adaptively chosen iteration batch; the
//! median, mean, and min per-iteration times are printed to stdout in a
//! stable single-line format.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifier combining a function name and a parameter rendering.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timing driver passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration nanoseconds of the final measurement.
    pub last_mean_ns: f64,
    /// Median per-iteration nanoseconds of the final measurement.
    pub last_median_ns: f64,
    /// Minimum per-iteration nanoseconds of the final measurement.
    pub last_min_ns: f64,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            last_mean_ns: 0.0,
            last_median_ns: 0.0,
            last_min_ns: 0.0,
        }
    }

    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: grow the batch until one batch takes
        // at least ~2 ms, so cheap routines are not all timer noise.
        let mut batch: u64 = 1;
        let warmup_deadline = Instant::now() + Duration::from_millis(150);
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(2) || Instant::now() >= warmup_deadline {
                break;
            }
            batch = (batch * 4).min(1 << 24);
        }
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.last_min_ns = per_iter.first().copied().unwrap_or(0.0);
        self.last_median_ns = per_iter[per_iter.len() / 2];
        self.last_mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        println!(
            "{}/{}: median {}  mean {}  min {}",
            self.name,
            label,
            fmt_ns(b.last_median_ns),
            fmt_ns(b.last_mean_ns),
            fmt_ns(b.last_min_ns),
        );
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.label, f);
        self
    }

    /// Benchmarks `f` with a borrowed input under the given id.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.label, |b| f(b, input));
        self
    }

    /// Ends the group (printing is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        self.benchmark_group(name.to_string())
            .bench_function("bench", f);
        self
    }
}

/// Re-export for call sites that use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function compatible with `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.last_mean_ns >= 0.0);
        assert!(b.last_median_ns >= 0.0);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
